// Tests of the reduced-order transient backend (thermal/rom.h): backend
// name parsing, option validation, the certified error bound against the
// exact full solve, full-vs-rom trajectory agreement within the cumulative
// certificate on single-die / stacked / throttled workloads, and the
// non-vacuity of the bound (a workload perturbation must trip a fallback).
#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "chip/workload.h"
#include "core/mission.h"
#include "core/system_config.h"
#include "thermal/rom.h"
#include "thermal/stack.h"
#include "thermal/transient.h"

namespace th = brightsi::thermal;
namespace ch = brightsi::chip;
namespace co = brightsi::core;

namespace {

th::ThermalModel make_model(int axial_cells = 4) {
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = axial_cells;
  return th::ThermalModel(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                          ch::kPower7DieHeightM, grid);
}

th::OperatingPoint nominal_op() {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 676e-6 / 60.0;
  op.inlet_temperature_k = 300.15;
  return op;
}

/// Per-step observables both backends report; the certificate bounds every
/// one of them (peaks, block means and outlet temperatures are all maxima
/// or averages of the bounded temperature field).
struct StepRecord {
  double peak_k = 0.0;
  double outlet_k = 0.0;
  double max_block_mean_k = 0.0;
};

struct EngineRun {
  std::vector<StepRecord> steps;
  th::RomStats rom;  // zero-initialized for the full backend
};

EngineRun run_engine(const th::ThermalModel& model, const ch::WorkloadTrace& trace,
                     th::TransientEngineOptions options, double dt_s) {
  options.schedule.dt_s = dt_s;
  th::TransientEngine engine(model, nominal_op(), options);
  EngineRun run;
  engine.run(trace, ch::Power7PowerSpec{}, [&](const th::TransientEngine::StepView& view) {
    StepRecord record;
    record.peak_k = view.solution.peak_temperature_k;
    record.outlet_k = view.mean_outlet_k;
    for (const th::BlockTemperature& block : view.solution.block_temperatures) {
      record.max_block_mean_k = std::max(record.max_block_mean_k, block.mean_k);
    }
    run.steps.push_back(record);
  });
  if (engine.rom() != nullptr) {
    run.rom = engine.rom()->stats();
  }
  return run;
}

/// Asserts the rom trajectory tracks the full trajectory within the rom
/// run's final cumulative certificate (plus iterative-solver slack: the
/// full reference trajectory carries its own Krylov tolerance).
void expect_within_bound(const EngineRun& full, const EngineRun& rom) {
  ASSERT_EQ(full.steps.size(), rom.steps.size());
  ASSERT_GT(rom.rom.rom_steps, 0);
  const double bound = rom.rom.cumulative_bound_k + 1e-5;
  for (std::size_t i = 0; i < full.steps.size(); ++i) {
    EXPECT_LE(std::abs(full.steps[i].peak_k - rom.steps[i].peak_k), bound) << "step " << i;
    EXPECT_LE(std::abs(full.steps[i].outlet_k - rom.steps[i].outlet_k), bound)
        << "step " << i;
    EXPECT_LE(std::abs(full.steps[i].max_block_mean_k - rom.steps[i].max_block_mean_k),
              bound)
        << "step " << i;
  }
  // The certificate is in force: no accepted step exceeded the tolerance.
  EXPECT_LE(rom.rom.max_accepted_bound_k, rom.rom.cumulative_bound_k);
  EXPECT_LE(rom.rom.last_bound_k, rom.rom.cumulative_bound_k);
}

// ------------------------------------------------------------- vocabulary

TEST(RomBackend, BackendNamesRoundTrip) {
  EXPECT_STREQ(th::transient_backend_name(th::TransientBackend::kFull), "full");
  EXPECT_STREQ(th::transient_backend_name(th::TransientBackend::kRom), "rom");
  EXPECT_EQ(th::parse_transient_backend("full"), th::TransientBackend::kFull);
  EXPECT_EQ(th::parse_transient_backend("rom"), th::TransientBackend::kRom);
}

TEST(RomBackend, ParseRejectsUnknownNameListingTheVocabulary) {
  try {
    (void)th::parse_transient_backend("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("full"), std::string::npos);
    EXPECT_NE(message.find("rom"), std::string::npos);
  }
}

TEST(RomBackend, OptionsValidate) {
  th::RomOptions options;
  options.validate();  // defaults are valid
  options.tolerance_k = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.max_basis = 3;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.enrichment_moments = -1;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.drop_tolerance = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.roundoff_floor_k = -1e-12;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ certificate

TEST(RomCertificate, BoundsTheTrueErrorAgainstTheExactFullSolve) {
  const auto model = make_model();
  const auto op = nominal_op();
  const ch::Floorplan floorplan = ch::make_power7_floorplan();
  const ch::Floorplan* plans[] = {&floorplan};
  const std::span<const ch::Floorplan* const> floorplans(plans, 1);
  const double dt_s = 0.1;

  th::ReducedThermalModel rom(model, op);
  const auto state = model.uniform_state(op.inlet_temperature_k);

  // No basis for this step length yet: the first attempt must decline.
  EXPECT_FALSE(rom.try_step(state, floorplans, dt_s).has_value());

  // Enrich from one full snapshot, then re-attempt the same step: the
  // lifted field must match the full solve within the certified bound.
  const th::ThermalSolution full = model.step_transient(state, floorplan, op, dt_s);
  rom.enrich(dt_s, floorplans, full, state);
  const std::optional<th::ThermalSolution> reduced = rom.try_step(state, floorplans, dt_s);
  ASSERT_TRUE(reduced.has_value());

  ASSERT_EQ(reduced->temperature_k.size(), full.temperature_k.size());
  double true_error = 0.0;
  for (std::size_t i = 0; i < full.temperature_k.size(); ++i) {
    true_error = std::max(
        true_error, std::abs(reduced->temperature_k.data()[i] - full.temperature_k.data()[i]));
  }
  const th::RomStats& stats = rom.stats();
  EXPECT_GT(stats.last_bound_k, 0.0);
  EXPECT_LE(stats.last_bound_k, rom.options().tolerance_k);
  // The full solve itself is iterative; its residual-level error is the
  // only slack the certificate does not cover.
  EXPECT_LE(true_error, stats.last_bound_k + 1e-6);
  EXPECT_EQ(stats.rom_steps, 1);
  EXPECT_EQ(stats.full_steps, 1);
  EXPECT_GT(stats.basis_size, 0);
}

// ------------------------------------------------- full-vs-rom trajectories

TEST(RomTrajectory, SingleDieStaysWithinTheCumulativeBound) {
  const auto model = make_model();
  const auto trace = ch::burst_trace(1);  // idle | burst | sustain, 3.0 s

  th::TransientEngineOptions full_options;
  const EngineRun full = run_engine(model, trace, full_options, 0.1);

  th::TransientEngineOptions rom_options;
  rom_options.backend = th::TransientBackend::kRom;
  const EngineRun rom = run_engine(model, trace, rom_options, 0.1);

  expect_within_bound(full, rom);
  // The reduced path actually carried the run: fallbacks are the rare case.
  EXPECT_GT(rom.rom.rom_steps, rom.rom.full_steps);
  EXPECT_GT(rom.rom.basis_size, 0);
  EXPECT_EQ(rom.rom.dt_models, 1);
}

TEST(RomTrajectory, ThreeDieStackStaysWithinTheCumulativeBound) {
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 4;
  const th::ThermalModel model(th::multi_die_stack(3), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, grid);
  const auto trace = ch::burst_trace(1);

  th::TransientEngineOptions options;
  options.upper_die_floorplans = {ch::make_power7_floorplan(ch::memory_die_power_spec()),
                                  ch::make_power7_floorplan(ch::memory_die_power_spec())};
  const EngineRun full = run_engine(model, trace, options, 0.1);

  options.backend = th::TransientBackend::kRom;
  const EngineRun rom = run_engine(model, trace, options, 0.1);

  expect_within_bound(full, rom);
}

TEST(RomTrajectory, ThrottledReplayStaysWithinTheCumulativeBound) {
  // A governor's floorplans depend on the temperatures it observes, so a
  // live governor would feed the two backends different inputs. Record the
  // granted floorplans from the full run, then replay them into the rom
  // run: identical inputs, so the certificate applies step for step.
  const auto model = make_model();
  const auto trace = ch::burst_trace(1);
  const ch::Power7PowerSpec spec;
  const double kThrottleAboveK = 310.0;

  std::vector<ch::Floorplan> granted;
  std::vector<StepRecord> full_steps;
  double throttle = 1.0;
  int throttled_steps = 0;
  {
    th::TransientEngineOptions options;
    options.schedule.dt_s = 0.1;
    th::TransientEngine engine(model, nominal_op(), options);
    engine.run(
        trace,
        [&](const ch::WorkloadPhase& phase, const th::TransientStep&) {
          ch::WorkloadPhase granted_phase = phase;
          granted_phase.core_activity *= throttle;
          granted.push_back(ch::apply_phase(spec, granted_phase));
          return granted.back();
        },
        [&](const th::TransientEngine::StepView& view) {
          full_steps.push_back({view.solution.peak_temperature_k, view.mean_outlet_k, 0.0});
          if (view.solution.peak_temperature_k > kThrottleAboveK) {
            throttle = std::max(0.1, throttle * 0.9);
            ++throttled_steps;
          }
        });
  }
  ASSERT_GT(throttled_steps, 0);  // the governor actually engaged

  th::TransientEngineOptions rom_options;
  rom_options.schedule.dt_s = 0.1;
  rom_options.backend = th::TransientBackend::kRom;
  th::TransientEngine engine(model, nominal_op(), rom_options);
  std::vector<StepRecord> rom_steps;
  engine.run(
      trace,
      [&](const ch::WorkloadPhase&, const th::TransientStep& step) {
        return granted.at(static_cast<std::size_t>(step.index));
      },
      [&](const th::TransientEngine::StepView& view) {
        rom_steps.push_back({view.solution.peak_temperature_k, view.mean_outlet_k, 0.0});
      });

  ASSERT_NE(engine.rom(), nullptr);
  const th::RomStats& stats = engine.rom()->stats();
  ASSERT_GT(stats.rom_steps, 0);
  ASSERT_EQ(full_steps.size(), rom_steps.size());
  const double bound = stats.cumulative_bound_k + 1e-5;
  for (std::size_t i = 0; i < full_steps.size(); ++i) {
    EXPECT_LE(std::abs(full_steps[i].peak_k - rom_steps[i].peak_k), bound) << "step " << i;
    EXPECT_LE(std::abs(full_steps[i].outlet_k - rom_steps[i].outlet_k), bound)
        << "step " << i;
  }
}

// ------------------------------------------------------------- non-vacuity

TEST(RomFallback, WorkloadPerturbationTripsTheBound) {
  // The bound is only worth certifying if it can say no. A lull long
  // enough to adapt the basis, then a spatially different slam (caches and
  // I/O at 8x, cores off): the reduced step's residual must blow past the
  // tolerance and force a full-solve fallback mid-run.
  const auto model = make_model();
  std::vector<ch::WorkloadPhase> phases(2);
  phases[0] = {"lull", 1.0, 0.05, 0.05, 0.05, 0.05};
  phases[1] = {"slam", 0.5, 0.0, 8.0, 8.0, 8.0};
  const ch::WorkloadTrace trace(phases);

  th::TransientEngineOptions options;
  options.backend = th::TransientBackend::kRom;
  const EngineRun rom = run_engine(model, trace, options, 0.1);

  // At least one fallback beyond the cold-start enrichment, and the
  // rejection was a real bound trip, not a missing basis.
  EXPECT_GT(rom.rom.full_steps, 1);
  EXPECT_GT(rom.rom.max_rejected_bound_k, rom.rom.max_accepted_bound_k);
  EXPECT_GT(rom.rom.max_rejected_bound_k, th::RomOptions{}.tolerance_k);
}

// ---------------------------------------------------------------- mission

TEST(RomMission, SurfacesTheCertificateAndTracksTheFullBackend) {
  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 8;
  config.system.fvm.axial_steps = 60;
  config.workload = ch::burst_trace(1);
  config.reservoir.tank_volume_m3 = 1e-3;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.dt_s = 0.1;

  const co::MissionResult full = co::run_mission(config);
  config.transient_backend = th::TransientBackend::kRom;
  const co::MissionResult rom = co::run_mission(config);

  // The counters land in the result (and from there in sweep rows and
  // BENCH_mission.json); the full backend reports all-zero rom fields.
  EXPECT_EQ(full.rom_steps, 0);
  EXPECT_EQ(full.rom_fallbacks, 0);
  EXPECT_GT(rom.rom_steps, 0);
  EXPECT_GT(rom.rom_fallbacks, 0);  // at least the cold-start enrichment
  EXPECT_GT(rom.rom_basis_size, 0);
  EXPECT_GT(rom.rom_build_time_s, 0.0);
  EXPECT_GT(rom.rom_max_bound_k, 0.0);
  EXPECT_LE(rom.rom_max_bound_k, config.rom.tolerance_k);
  EXPECT_GE(rom.rom_cumulative_bound_k, rom.rom_max_bound_k);
  EXPECT_EQ(rom.steps, full.steps);

  // System-level observables agree: temperatures within the certificate,
  // the electrochemical state (driven by the outlet temperature) closely.
  EXPECT_LE(std::abs(rom.max_peak_temperature_c - full.max_peak_temperature_c),
            rom.rom_cumulative_bound_k + 1e-5);
  EXPECT_NEAR(rom.final_soc, full.final_soc, 1e-4);
  EXPECT_EQ(rom.supply_always_ok, full.supply_always_ok);
}

}  // namespace
