// Tests of the PDN module: analytic single-resistor cases, KCL
// conservation, monotonicity in taps/sheet resistance, the Fig. 8
// calibration window and the VRM conversion model.
#include <cmath>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "pdn/power_grid.h"
#include "pdn/vrm.h"

namespace pd = brightsi::pdn;
namespace ch = brightsi::chip;

namespace {

ch::Floorplan single_load_floorplan(double power_w) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"load", ch::BlockType::kL2Cache, ch::rect_mm(4, 4, 2, 2), power_w / 4e-6});
  return fp;
}

// ------------------------------------------------------------- grid basics
TEST(PowerGrid, SpecValidation) {
  pd::PowerGridSpec spec;
  spec.nodes_x = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = pd::PowerGridSpec{};
  spec.sheet_resistance_ohm_per_sq = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(PowerGrid, NominalLoadCurrentMatchesBlockPower) {
  pd::PowerGridSpec spec;
  spec.nodes_x = 20;
  spec.nodes_y = 20;
  const auto fp = single_load_floorplan(3.0);
  const pd::PowerGrid grid(spec, fp);
  EXPECT_NEAR(grid.nominal_load_current_a(), 3.0, 1e-9);  // 3 W at 1 V
}

TEST(PowerGrid, DefaultFilterSelectsCaches) {
  pd::PowerGridSpec spec;
  spec.nodes_x = 10;
  spec.nodes_y = 10;
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"core", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 10), 1e5});
  fp.add_block({"l3", ch::BlockType::kL3Cache, ch::rect_mm(5, 0, 5, 10), 2e4});
  const pd::PowerGrid grid(spec, fp);
  EXPECT_NEAR(grid.nominal_load_current_a(), fp.cache_power(), 1e-9);
}

TEST(PowerGrid, SolveRequiresTaps) {
  const auto fp = single_load_floorplan(1.0);
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  EXPECT_THROW(grid.solve({}), std::invalid_argument);
}

// --------------------------------------------------------------- KCL checks
TEST(PowerGrid, SupplyCurrentEqualsLoadCurrent) {
  // Property: in steady state, the VRM taps source exactly the sink total.
  const auto fp = single_load_floorplan(2.5);
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto taps =
      pd::make_vrm_grid(3, 3, fp.die_width(), fp.die_height(), 1.0, 10e-3);
  const auto sol = grid.solve(taps);
  EXPECT_NEAR(sol.total_supply_current_a, sol.total_load_current_a, 1e-6);
}

TEST(PowerGrid, NoLoadMeansFlatRailAtSetPoint) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"core", ch::BlockType::kCore, ch::rect_mm(0, 0, 10, 10), 1e5});
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);  // cache filter: no loads
  const auto taps = pd::make_vrm_grid(2, 2, fp.die_width(), fp.die_height(), 1.0, 10e-3);
  const auto sol = grid.solve(taps);
  EXPECT_NEAR(sol.min_voltage_v, 1.0, 1e-9);
  EXPECT_NEAR(sol.max_voltage_v, 1.0, 1e-9);
  EXPECT_NEAR(sol.ohmic_loss_w, 0.0, 1e-12);
}

TEST(PowerGrid, SingleTapAnalyticDrop) {
  // One tap with output resistance R sourcing a total current I: the tap
  // node sits at set_point - I*R regardless of the mesh.
  const auto fp = single_load_floorplan(2.0);  // 2 A at 1 V
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const double r_out = 20e-3;
  const std::vector<pd::VrmTap> taps = {{5e-3, 5e-3, 1.0, r_out}};
  const auto sol = grid.solve(taps);
  EXPECT_NEAR(sol.max_voltage_v, 1.0 - 2.0 * r_out, 2e-3);
}

// ------------------------------------------------------------ monotonicity
TEST(PowerGrid, MoreTapsReduceDroop) {
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto few = pd::make_vrm_grid(2, 2, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto many = pd::make_vrm_grid(6, 6, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  EXPECT_GT(grid.solve(many).min_voltage_v, grid.solve(few).min_voltage_v);
}

TEST(PowerGrid, HigherSheetResistanceMoreDroop) {
  const auto fp = ch::make_power7_floorplan();
  pd::PowerGridSpec lo;
  lo.sheet_resistance_ohm_per_sq = 0.02;
  pd::PowerGridSpec hi;
  hi.sheet_resistance_ohm_per_sq = 0.2;
  const auto taps = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  EXPECT_GT(pd::PowerGrid(lo, fp).solve(taps).min_voltage_v,
            pd::PowerGrid(hi, fp).solve(taps).min_voltage_v);
}

TEST(PowerGrid, EdgeFeedingWorseThanDistributed) {
  // The paper's architectural point: in-package distributed VRMs beat
  // peripheral feeding for the same tap count and output resistance.
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto distributed =
      pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto edge = pd::make_edge_taps(8, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  ASSERT_EQ(distributed.size(), edge.size());
  EXPECT_GT(grid.solve(distributed).min_voltage_v, grid.solve(edge).min_voltage_v);
}

// ----------------------------------------------------------- Fig. 8 window
TEST(PowerGrid, Fig8CalibrationWindow) {
  // Paper Fig. 8: cache-rail voltages between ~0.96 and ~0.995 V at the
  // 5 A load with distributed in-package VRMs.
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto taps = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto sol = grid.solve(taps);
  EXPECT_NEAR(sol.min_voltage_v, 0.962, 0.008);
  EXPECT_NEAR(sol.max_voltage_v, 0.995, 0.004);
  EXPECT_NEAR(sol.total_load_current_a, 5.0, 0.05);
}

TEST(PowerGrid, ConstantPowerSlightlyWorseThanConstantCurrent) {
  // At reduced node voltage, constant-power loads draw more current, so
  // droop deepens (slightly).
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto taps = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto cc = grid.solve(taps);
  const auto cp = grid.solve_constant_power(taps);
  EXPECT_LE(cp.min_voltage_v, cc.min_voltage_v + 1e-9);
  EXPECT_GT(cp.min_voltage_v, cc.min_voltage_v - 0.01);
  EXPECT_GT(cp.total_load_current_a, cc.total_load_current_a);
}

TEST(PowerGrid, OhmicLossIsSmallFraction) {
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto taps = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto sol = grid.solve(taps);
  EXPECT_GT(sol.ohmic_loss_w, 0.0);
  EXPECT_LT(sol.ohmic_loss_w, 0.25);  // a few % of the 5 W rail
}

// -------------------------------------------------------------------- taps
TEST(Taps, GridPlacementCoversDie) {
  const auto taps = pd::make_vrm_grid(3, 2, 26.55e-3, 21.34e-3, 1.0, 1e-3);
  ASSERT_EQ(taps.size(), 6u);
  for (const auto& tap : taps) {
    EXPECT_GT(tap.x_m, 0.0);
    EXPECT_LT(tap.x_m, 26.55e-3);
    EXPECT_GT(tap.y_m, 0.0);
    EXPECT_LT(tap.y_m, 21.34e-3);
  }
}

TEST(Taps, EdgePlacementOnPerimeter) {
  const auto taps = pd::make_edge_taps(5, 26.55e-3, 21.34e-3, 1.0, 1e-3);
  ASSERT_EQ(taps.size(), 10u);
  for (const auto& tap : taps) {
    EXPECT_TRUE(tap.x_m < 1e-4 || tap.x_m > 26.55e-3 - 1e-4);
  }
}

// --------------------------------------------------------------------- VRM
TEST(Vrm, SpecValidation) {
  pd::VrmSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.efficiency = 1.2;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = pd::VrmSpec{};
  spec.max_input_voltage_v = spec.min_input_voltage_v;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Vrm, ConversionArithmetic) {
  pd::VrmSpec spec;  // 86 % efficient
  const auto c = pd::convert_at_bus(spec, 5.0, 1.0);
  EXPECT_NEAR(c.input_power_w, 5.0 / 0.86, 1e-9);
  EXPECT_NEAR(c.input_current_a, 5.0 / 0.86, 1e-9);
  EXPECT_NEAR(c.loss_w, 5.0 / 0.86 - 5.0, 1e-9);
  EXPECT_TRUE(c.input_in_window);
}

TEST(Vrm, WindowDetection) {
  pd::VrmSpec spec;
  EXPECT_FALSE(pd::convert_at_bus(spec, 1.0, 0.5).input_in_window);
  EXPECT_FALSE(pd::convert_at_bus(spec, 1.0, 2.5).input_in_window);
  EXPECT_TRUE(pd::convert_at_bus(spec, 1.0, 1.2).input_in_window);
}

TEST(Vrm, HigherBusVoltageLowersInputCurrent) {
  pd::VrmSpec spec;
  EXPECT_GT(pd::convert_at_bus(spec, 5.0, 1.0).input_current_a,
            pd::convert_at_bus(spec, 5.0, 1.5).input_current_a);
}

}  // namespace
