// Tests of the fleet layer (fleet/rack.h): rack validation, the shared-loop
// steady solve (serial inlet rise, energy balance, blocked-branch
// rerouting, temperature-dependent coolant), staggered trace replay, and
// the fleet sweep plans' determinism contract — rows byte-identical across
// thread counts, shard counts and kill-and-resume cycles.
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "chip/workload.h"
#include "core/system_config.h"
#include "fleet/rack.h"
#include "sweep/execution.h"
#include "sweep/registry.h"
#include "sweep/runner.h"
#include "thermal/materials.h"
#include "thermal/model.h"

namespace ch = brightsi::chip;
namespace co = brightsi::core;
namespace fl = brightsi::fleet;
namespace sw = brightsi::sweep;
namespace th = brightsi::thermal;
namespace fs = std::filesystem;

namespace {

std::string csv_of(const sw::SweepResult& result) {
  std::stringstream stream;
  sw::write_sweep_csv(stream, result);
  return stream.str();
}

/// A fresh, empty directory path under the test temp dir.
std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("brightsi_fleet_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// The fleet plans' base: coarse thermal axis, N chips solve per scenario.
co::SystemConfig fast_base() {
  co::SystemConfig base = co::power7_system_config();
  base.thermal_grid.axial_cells = 8;
  return base;
}

/// A small fleet grid over the steady rack evaluator (6 rows).
sw::SweepPlan small_fleet_grid() {
  sw::SweepPlan plan;
  plan.name = "fleet_grid";
  plan.base = fast_base();
  plan.evaluator = sw::fleet_evaluator();
  plan.add_grid({{"rack_chips", {2.0, 4.0}},
                 {"rack_segments", {1.0, 2.0}},
                 {"coolant_temp_dep", {0.0}}});
  sw::ScenarioSpec blocked;
  blocked.name = "blocked branch";
  blocked.set("rack_chips", 4.0);
  blocked.set("rack_segments", 2.0);
  blocked.set("rack_blocked", 1.0);
  plan.add(std::move(blocked));
  sw::ScenarioSpec laws;
  laws.name = "temp-dependent coolant";
  laws.set("rack_chips", 4.0);
  laws.set("rack_segments", 2.0);
  laws.set("coolant_temp_dep", 1.0);
  plan.add(std::move(laws));
  return plan;
}

// -------------------------------------------------------------- validation
TEST(RackSpec, EmptyRackThrows) {
  fl::RackSpec rack;
  EXPECT_THROW(rack.validate(), std::invalid_argument);
}

TEST(RackSpec, DuplicateChipNamesThrow) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 1);
  rack.chips[1].name = rack.chips[0].name;
  EXPECT_THROW(rack.validate(), std::invalid_argument);
}

TEST(RackSpec, SegmentGapThrows) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 2);
  rack.chips[1].segment = 3;  // loop 0 then has segments {0, 3}: gap
  EXPECT_THROW(rack.validate(), std::invalid_argument);
}

TEST(RackSpec, NegativeLoopIndexThrows) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 1);
  rack.chips[0].loop = -1;
  EXPECT_THROW(rack.validate(), std::invalid_argument);
}

TEST(RackSpec, DemoRackShapes) {
  const fl::RackSpec rack = fl::make_demo_rack(fast_base(), 8, 2, 2);
  EXPECT_EQ(rack.chips.size(), 8u);
  EXPECT_EQ(rack.loop_count(), 2);
  EXPECT_EQ(rack.segment_count(0), 2);
  EXPECT_EQ(rack.segment_count(1), 2);
  EXPECT_THROW((void)rack.segment_count(2), std::invalid_argument);
}

// ------------------------------------------------------------ steady solve
TEST(RackSteady, SingleChipMatchesTheDirectThermalSolve) {
  // A one-chip rack is exactly the single-chip model at the loop operating
  // point: same flow, same inlet, constant-property coolant.
  const co::SystemConfig base = fast_base();
  const fl::RackSpec rack = fl::make_demo_rack(base, 1, 1, 1);
  const fl::RackSolveResult result = fl::solve_rack_steady(rack);

  const ch::Floorplan floorplan = ch::make_power7_floorplan(base.power_spec);
  const th::ThermalModel model(base.stack, floorplan.die_width(), floorplan.die_height(),
                               base.thermal_grid);
  th::OperatingPoint op = base.thermal_operating_point();
  op.total_flow_m3_per_s = rack.loop_flow_m3_per_s;
  op.inlet_temperature_k = rack.loop_inlet_temperature_k;
  const th::ThermalSolution direct = model.solve_steady(floorplan, op);

  ASSERT_EQ(result.chips.size(), 1u);
  EXPECT_EQ(result.chips[0].peak_temperature_k, direct.peak_temperature_k);
  EXPECT_EQ(result.chips[0].heat_absorbed_w, direct.fluid_heat_absorbed_w);
  EXPECT_DOUBLE_EQ(result.chips[0].flow_fraction, 1.0);
}

TEST(RackSteady, SerialInletsRiseMonotonically) {
  const fl::RackSpec rack = fl::make_demo_rack(fast_base(), 4, 1, 4);
  const fl::RackSolveResult result = fl::solve_rack_steady(rack);
  ASSERT_EQ(result.loops.size(), 1u);
  const std::vector<double>& inlets = result.loops[0].segment_inlet_k;
  ASSERT_EQ(inlets.size(), 4u);
  for (std::size_t s = 1; s < inlets.size(); ++s) {
    EXPECT_GT(inlets[s], inlets[s - 1]) << "segment " << s;
  }
  EXPECT_TRUE(result.inlet_monotonic);
  EXPECT_GT(result.max_inlet_rise_k, 0.0);
  // Chips report the plenum inlet of their segment.
  for (const fl::RackChipResult& c : result.chips) {
    EXPECT_EQ(c.inlet_temperature_k, inlets[static_cast<std::size_t>(c.segment)]);
    EXPECT_GT(c.outlet_temperature_k, c.inlet_temperature_k);
  }
}

TEST(RackSteady, EnergyBalanceClosesToRounding) {
  // The acceptance property: per-loop, the sum of the chips' coolant heat
  // pickups equals the loop's enthalpy rise to 1e-6 relative (by
  // construction it telescopes to rounding).
  for (const bool hetero : {false, true}) {
    const fl::RackSpec rack = fl::make_demo_rack(fast_base(), 8, 2, 2, hetero);
    const fl::RackSolveResult result = fl::solve_rack_steady(rack);
    EXPECT_LE(result.energy_balance_rel_error, 1e-6);
    const double cvol = rack.coolant_reference().volumetric_heat_capacity_j_per_m3_k;
    for (std::size_t l = 0; l < result.loops.size(); ++l) {
      double chip_heat_w = 0.0;
      for (const fl::RackChipResult& c : result.chips) {
        if (c.loop == static_cast<int>(l)) {
          chip_heat_w += c.heat_absorbed_w;
        }
      }
      const double enthalpy_rise_w =
          cvol * rack.loop_flow_m3_per_s *
          (result.loops[l].outlet_temperature_k - result.loops[l].inlet_temperature_k);
      EXPECT_NEAR(enthalpy_rise_w, chip_heat_w, 1e-6 * chip_heat_w)
          << "loop " << l << " hetero " << hetero;
    }
  }
}

TEST(RackSteady, BlockedChipGetsNoFlowAndSurvivorsInheritIt) {
  const fl::RackSpec rack =
      fl::make_demo_rack(fast_base(), 4, 1, 2, /*heterogeneous=*/false,
                         /*blocked_count=*/1);
  const fl::RackSolveResult result = fl::solve_rack_steady(rack);
  const fl::RackChipResult& blocked = result.chips[0];
  EXPECT_TRUE(blocked.blocked);
  EXPECT_DOUBLE_EQ(blocked.flow_m3_per_s, 0.0);
  EXPECT_DOUBLE_EQ(blocked.heat_absorbed_w, 0.0);
  // Chip 0 and chip 2 share segment 0; the survivor takes the whole
  // segment flow.
  const fl::RackChipResult& survivor = result.chips[2];
  EXPECT_EQ(survivor.segment, blocked.segment);
  EXPECT_DOUBLE_EQ(survivor.flow_fraction, 1.0);
  EXPECT_DOUBLE_EQ(survivor.flow_m3_per_s, rack.loop_flow_m3_per_s);
  // Powered-off chip: less total heat than the unblocked rack.
  const fl::RackSolveResult unblocked =
      fl::solve_rack_steady(fl::make_demo_rack(fast_base(), 4, 1, 2));
  EXPECT_LT(result.heat_absorbed_w, unblocked.heat_absorbed_w);
}

TEST(RackSteady, AllBlockedSegmentThrowsTheNamedManifoldError) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 2);
  rack.chips[0].blocked = true;  // the only chip of segment 0
  try {
    (void)fl::solve_rack_steady(rack);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chip0"), std::string::npos) << e.what();
  }
}

TEST(RackSteady, HeterogeneousSegmentsSplitByConductance) {
  // Mixed one-/two-die segments: the two-die chip has twice the branch
  // conductance, so it takes 2/3 of the segment flow.
  const fl::RackSpec rack = fl::make_demo_rack(fast_base(), 8, 2, 2, /*heterogeneous=*/true);
  const fl::RackSolveResult result = fl::solve_rack_steady(rack);
  for (const fl::RackChipResult& c : result.chips) {
    const bool two_die = c.flow_fraction > 0.5;
    EXPECT_NEAR(c.flow_fraction, two_die ? 2.0 / 3.0 : 1.0 / 3.0, 1e-9) << c.name;
  }
}

TEST(RackSteady, DisabledLawsAreBitIdenticalRegardlessOfCoefficients) {
  const fl::RackSpec reference = fl::make_demo_rack(fast_base(), 4, 1, 2);
  fl::RackSpec tweaked = reference;
  tweaked.coolant_laws.viscosity_activation_j_per_mol = 99999.0;
  tweaked.coolant_laws.conductivity_coeff_per_k = 0.5;
  tweaked.coolant_laws.reference_temperature_k = 250.0;
  // temperature_dependent stays false: at() must return the reference
  // coolant bit for bit, so the solves match exactly.
  const fl::RackSolveResult a = fl::solve_rack_steady(reference);
  const fl::RackSolveResult b = fl::solve_rack_steady(tweaked);
  EXPECT_EQ(a.peak_temperature_k, b.peak_temperature_k);
  EXPECT_EQ(a.pump_power_w, b.pump_power_w);
  EXPECT_EQ(a.heat_absorbed_w, b.heat_absorbed_w);
  for (std::size_t i = 0; i < a.chips.size(); ++i) {
    EXPECT_EQ(a.chips[i].outlet_temperature_k, b.chips[i].outlet_temperature_k);
  }
}

TEST(RackSteady, TemperatureDependentLawsCutPumpPowerAndChangeTheSolve) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 4, 1, 4);
  const fl::RackSolveResult constant = fl::solve_rack_steady(rack);
  rack.coolant_laws.temperature_dependent = true;
  rack.coolant_laws.reference_temperature_k = rack.loop_inlet_temperature_k;
  const fl::RackSolveResult priced = fl::solve_rack_steady(rack);
  // Downstream segments run warmer than the reference, so their viscosity
  // — and hence the loop pressure drop and pump power — drops.
  EXPECT_LT(priced.pump_power_w, constant.pump_power_w);
  // The film coefficients change too: the thermal answer must move.
  EXPECT_NE(priced.peak_temperature_k, constant.peak_temperature_k);
  // First segment sits at the reference temperature: its inlet coolant is
  // exactly the reference, so the rise starts from the same base.
  EXPECT_EQ(priced.loops[0].segment_inlet_k[0], constant.loops[0].segment_inlet_k[0]);
}

// ---------------------------------------------------------- coolant laws
TEST(CoolantLaws, DisabledReturnsReferenceBitwise) {
  const th::CoolantProperties reference;
  th::CoolantPropertyLaws laws;
  laws.viscosity_activation_j_per_mol = 123456.0;
  EXPECT_EQ(laws.at(reference, 350.0), reference);
}

TEST(CoolantLaws, AtTheReferenceTemperatureEnabledLawsChangeNothing) {
  const th::CoolantProperties reference;
  th::CoolantPropertyLaws laws;
  laws.temperature_dependent = true;
  EXPECT_EQ(laws.at(reference, laws.reference_temperature_k), reference);
}

TEST(CoolantLaws, AndradeViscosityFallsAndConductivityRisesWithTemperature) {
  const th::CoolantProperties reference;
  th::CoolantPropertyLaws laws;
  laws.temperature_dependent = true;
  const th::CoolantProperties warm = laws.at(reference, 330.0);
  EXPECT_LT(warm.dynamic_viscosity_pa_s, reference.dynamic_viscosity_pa_s);
  EXPECT_GT(warm.thermal_conductivity_w_per_m_k, reference.thermal_conductivity_w_per_m_k);
  // Density and heat capacity stay at the reference values.
  EXPECT_EQ(warm.density_kg_per_m3, reference.density_kg_per_m3);
  EXPECT_EQ(warm.volumetric_heat_capacity_j_per_m3_k,
            reference.volumetric_heat_capacity_j_per_m3_k);
  const th::CoolantProperties cold = laws.at(reference, 280.0);
  EXPECT_GT(cold.dynamic_viscosity_pa_s, reference.dynamic_viscosity_pa_s);
}

// ----------------------------------------------------------------- replay
TEST(FleetReplay, DeterministicAcrossRuns) {
  fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 2);
  rack.chips[1].workload_offset_s = 0.5;
  fl::FleetReplayOptions options;
  options.trace = ch::burst_trace(1);
  options.steps = 6;
  const fl::FleetReplayResult a = fl::replay_fleet_trace(rack, options);
  const fl::FleetReplayResult b = fl::replay_fleet_trace(rack, options);
  EXPECT_EQ(a.max_peak_temperature_k, b.max_peak_temperature_k);
  EXPECT_EQ(a.heat_absorbed_j, b.heat_absorbed_j);
  EXPECT_EQ(a.mean_pump_power_w, b.mean_pump_power_w);
  ASSERT_EQ(a.final_chips.size(), b.final_chips.size());
  for (std::size_t i = 0; i < a.final_chips.size(); ++i) {
    EXPECT_EQ(a.final_chips[i].peak_temperature_k, b.final_chips[i].peak_temperature_k);
  }
}

TEST(FleetReplay, StaggerChangesTheBurstReplay) {
  const fl::RackSpec aligned = fl::make_demo_rack(fast_base(), 2, 1, 2);
  fl::RackSpec staggered = aligned;
  staggered.chips[1].workload_offset_s = 1.0;  // opposite phase of the burst
  fl::FleetReplayOptions options;
  options.trace = ch::burst_trace(1);
  options.steps = 8;
  const fl::FleetReplayResult a = fl::replay_fleet_trace(aligned, options);
  const fl::FleetReplayResult b = fl::replay_fleet_trace(staggered, options);
  EXPECT_NE(a.heat_absorbed_j, b.heat_absorbed_j);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_TRUE(a.inlet_monotonic);
  EXPECT_TRUE(b.inlet_monotonic);
}

TEST(FleetReplay, RejectsBadStepControls) {
  const fl::RackSpec rack = fl::make_demo_rack(fast_base(), 2, 1, 1);
  fl::FleetReplayOptions options;
  options.trace = ch::burst_trace(1);
  options.steps = 0;
  EXPECT_THROW((void)fl::replay_fleet_trace(rack, options), std::invalid_argument);
  options.steps = 4;
  options.dt_s = 0.0;
  EXPECT_THROW((void)fl::replay_fleet_trace(rack, options), std::invalid_argument);
}

// ------------------------------------------------------------ fleet sweeps
TEST(FleetSweep, RegisteredPlansValidateAndExpand) {
  const sw::SweepPlan rack_plan = sw::make_registered_plan("fleet_rack");
  EXPECT_EQ(rack_plan.evaluator.name, "fleet");
  EXPECT_EQ(rack_plan.scenarios.size(), 10u);  // 2x2x2 grid + 2 named
  const sw::SweepPlan mission_plan = sw::make_registered_plan("fleet_mission");
  EXPECT_EQ(mission_plan.evaluator.name, "fleet_replay");
  EXPECT_EQ(mission_plan.scenarios.size(), 8u);  // 2x2x2 grid
}

TEST(FleetSweep, RowsByteIdenticalAcrossThreadCounts) {
  const sw::SweepPlan plan = small_fleet_grid();
  const sw::SweepResult serial = sw::SweepRunner({1}).run(plan);
  const sw::SweepResult parallel = sw::SweepRunner({4}).run(plan);
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(serial.rows.size(), 6u);
  for (const sw::ScenarioResult& row : serial.rows) {
    EXPECT_TRUE(row.error.empty()) << row.name << ": " << row.error;
  }
}

TEST(FleetSweep, ShardedRunsMergeByteIdenticalAtShardCounts123) {
  const sw::SweepPlan plan = small_fleet_grid();
  const std::string reference = csv_of(sw::SweepRunner({1}).run(plan));
  for (const int shard_count : {1, 2, 3}) {
    const std::string dir = temp_dir("shards_" + std::to_string(shard_count));
    int evaluated = 0;
    for (int index = 0; index < shard_count; ++index) {
      sw::ShardOptions options;
      options.store_dir = dir;
      options.scope = plan.name;
      options.shard_index = index;
      options.shard_count = shard_count;
      options.local = {2, true};
      const sw::SweepResult partial = sw::SweepRunner(sw::make_shard_backend(options)).run(plan);
      evaluated += partial.exec.evaluated;
    }
    EXPECT_EQ(evaluated, 6) << shard_count << " shards";
    EXPECT_EQ(csv_of(sw::assemble_from_store(plan, dir)), reference)
        << shard_count << " shards";
  }
}

TEST(FleetSweep, KillAndResumeReproducesTheUninterruptedRun) {
  const sw::SweepPlan plan = small_fleet_grid();
  const std::string reference = csv_of(sw::SweepRunner({1}).run(plan));
  const std::string dir = temp_dir("resume");

  // "Kill" after 2 fresh evaluations (row-limit injection).
  sw::ShardOptions limited;
  limited.store_dir = dir;
  limited.scope = plan.name;
  limited.row_limit = 2;
  limited.local = {2, true};
  const sw::SweepResult killed = sw::SweepRunner(sw::make_shard_backend(limited)).run(plan);
  EXPECT_EQ(killed.exec.evaluated, 2);
  EXPECT_EQ(killed.exec.pending, 4);

  // Resume against the same store: only the missing rows are evaluated.
  sw::ShardOptions resume = limited;
  resume.row_limit = -1;
  const sw::SweepResult resumed = sw::SweepRunner(sw::make_shard_backend(resume)).run(plan);
  EXPECT_EQ(resumed.exec.store_hits, 2);
  EXPECT_EQ(resumed.exec.evaluated, 4);
  EXPECT_EQ(csv_of(resumed), reference);
  EXPECT_EQ(csv_of(sw::assemble_from_store(plan, dir)), reference);
}

}  // namespace
