// Golden regression suite for paper fidelity: the figure computations
// (library helpers in repro/figures.h, shared with the bench/ reproduction
// programs) compared against small CSVs checked into tests/golden/ with
// explicit per-column tolerances — so a physics regression fails ctest
// instead of drifting silently in bench output.
//
// Regenerating the goldens after an *intentional* physics change:
//   ./golden_test --update
// rewrites tests/golden/*.csv from the current model and exits.
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "repro/figures.h"

namespace re = brightsi::repro;

namespace {

bool update_mode = false;

/// Per-column tolerance: |fresh - golden| <= abs + rel * |golden|. The
/// defaults absorb cross-compiler libm/FMA drift in the iterative solves
/// while staying far below any physically meaningful change.
struct Tolerance {
  double rel = 1e-6;
  double abs = 1e-9;
};

std::string golden_path(const std::string& file) {
  return std::string(BRIGHTSI_GOLDEN_DIR) + "/" + file;
}

void compare_or_update(const std::string& file, const re::FigureTable& fresh,
                       const std::map<std::string, Tolerance>& tolerances) {
  const std::string path = golden_path(file);
  if (update_mode) {
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    re::write_figure_csv(os, fresh);
    std::printf("updated %s (%zu rows)\n", path.c_str(), fresh.rows.size());
    return;
  }

  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path
                  << " — regenerate with ./golden_test --update";
  const re::FigureTable golden = re::read_figure_csv(is, !fresh.label_column.empty());

  ASSERT_EQ(golden.columns, fresh.columns) << file << ": column set changed";
  ASSERT_EQ(golden.labels, fresh.labels) << file << ": row labels changed";
  ASSERT_EQ(golden.rows.size(), fresh.rows.size()) << file << ": row count changed";
  for (std::size_t r = 0; r < golden.rows.size(); ++r) {
    ASSERT_EQ(golden.rows[r].size(), fresh.rows[r].size()) << file << " row " << r;
    for (std::size_t c = 0; c < golden.rows[r].size(); ++c) {
      const auto it = tolerances.find(golden.columns[c]);
      const Tolerance tolerance = it != tolerances.end() ? it->second : Tolerance{};
      const double expected = golden.rows[r][c];
      const double actual = fresh.rows[r][c];
      const double allowed = tolerance.abs + tolerance.rel * std::abs(expected);
      EXPECT_LE(std::abs(actual - expected), allowed)
          << file << " row " << r
          << (golden.labels.empty() ? "" : " (" + golden.labels[r] + ")") << " column '"
          << golden.columns[c] << "': golden " << expected << " vs computed " << actual;
    }
  }
}

TEST(Golden, Fig3PolarizationCurves) {
  const re::FigureTable table = re::fig3_polarization_table();
  // Sanity before pinning: the paper's own validation claim holds.
  EXPECT_LT(re::fig3_worst_error_pct(table), 10.0);
  compare_or_update("fig3.csv", table,
                    {
                        {"flow_ul_per_min", {0.0, 1e-12}},
                        {"cell_voltage_v", {0.0, 1e-12}},
                        {"model_ma_per_cm2", {2e-4, 1e-9}},
                        {"reference_ma_per_cm2", {0.0, 1e-12}},
                        {"error_pct", {0.0, 0.05}},
                    });
}

TEST(Golden, Fig7ArrayVi) {
  const re::FigureTable table = re::fig7_array_vi_table();
  compare_or_update("fig7.csv", table,
                    {
                        {"cell_voltage_v", {0.0, 1e-12}},
                        {"current_a", {2e-4, 1e-9}},
                        {"power_w", {2e-4, 1e-9}},
                        {"current_density_a_per_cm2", {2e-4, 1e-12}},
                    });
}

TEST(Golden, Fig8VoltageMapSummary) {
  compare_or_update("fig8.csv", re::fig8_voltage_summary_table(),
                    {
                        {"total_load_a", {1e-9, 1e-9}},
                        {"total_supply_a", {1e-6, 1e-6}},
                        {"min_v", {0.0, 2e-5}},
                        {"max_v", {0.0, 2e-5}},
                        {"mean_v", {0.0, 2e-5}},
                        {"worst_drop_v", {0.0, 2e-5}},
                        {"ohmic_loss_w", {1e-4, 1e-6}},
                    });
}

TEST(Golden, Fig9ThermalSummaryAndBlocks) {
  const brightsi::thermal::ThermalSolution solution = re::fig9_thermal_solution();
  compare_or_update("fig9_summary.csv", re::fig9_thermal_summary(solution),
                    {
                        {"total_power_w", {1e-9, 1e-9}},
                        {"peak_c", {0.0, 2e-3}},
                        {"fluid_heat_w", {1e-5, 1e-3}},
                        {"energy_balance_pct", {0.0, 2e-3}},
                        {"outlet_mean_c", {0.0, 2e-3}},
                    });
  compare_or_update("fig9_blocks.csv", re::fig9_block_table(solution),
                    {
                        {"mean_c", {0.0, 2e-3}},
                        {"max_c", {0.0, 2e-3}},
                    });
}

TEST(Golden, Fig9DefaultSolverPathIsByteIdentical) {
  // Stronger than the toleranced comparison above: the default ILU(0)
  // solver path must reproduce the committed fig9 CSVs byte for byte.
  // This is the regression net under every solver-layer refactor — a
  // batched fill or preconditioner change that alters even the last ulp
  // (or the CSV formatting) trips it. The mg path is exempt: it is only
  // required to agree within solver tolerance.
  if (update_mode) {
    GTEST_SKIP() << "--update rewrites the files this test compares against";
  }
  const brightsi::thermal::ThermalSolution solution = re::fig9_thermal_solution();
  const std::map<std::string, const re::FigureTable> tables = {
      {"fig9_summary.csv", re::fig9_thermal_summary(solution)},
      {"fig9_blocks.csv", re::fig9_block_table(solution)},
  };
  for (const auto& [file, fresh] : tables) {
    std::ostringstream fresh_bytes;
    re::write_figure_csv(fresh_bytes, fresh);
    std::ifstream is(golden_path(file), std::ios::binary);
    ASSERT_TRUE(is) << "missing golden file " << golden_path(file);
    std::ostringstream golden_bytes;
    golden_bytes << is.rdbuf();
    EXPECT_EQ(fresh_bytes.str(), golden_bytes.str())
        << file << ": default-path output drifted from the committed bytes";
  }
}

TEST(Golden, PumpingEnergyBalance) {
  const re::FigureTable table = re::pumping_energy_table();
  // Sanity before pinning: the paper's headline shape — generation exceeds
  // the pumping cost at the Table II spec flow (row 3: 676 ml/min).
  ASSERT_EQ(table.rows.size(), 7u);
  EXPECT_GT(table.rows[3].back(), 0.0);
  const std::map<std::string, Tolerance> tolerances = {
      {"flow_ml_min", {0.0, 1e-12}},
      {"velocity_m_per_s", {1e-9, 1e-12}},
      {"reynolds", {1e-9, 1e-9}},
      {"dp_bar", {1e-9, 1e-12}},
      {"pump_w", {1e-9, 1e-12}},
      {"current_1v_a", {2e-4, 1e-9}},
      {"net_w", {2e-4, 1e-6}},
  };
  compare_or_update("pumping.csv", table, tolerances);

  if (!update_mode) {
    // A 2 % channel-height squeeze (hydraulic-resistance perturbation)
    // must move the pinned dp column beyond its tolerance — i.e. the
    // golden genuinely constrains the hydraulics, not just the headline.
    const re::FigureTable perturbed = re::pumping_energy_table(0.98);
    const std::size_t dp_column = 3;
    const Tolerance dp_tolerance = tolerances.at("dp_bar");
    bool tripped = false;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const double reference = table.rows[r][dp_column];
      const double drifted = perturbed.rows[r][dp_column];
      tripped = tripped || std::abs(drifted - reference) >
                               dp_tolerance.abs + dp_tolerance.rel * std::abs(reference);
    }
    EXPECT_TRUE(tripped) << "hydraulic perturbation slipped through the dp tolerance";
  }
}

// ------------------------------------------------- figure CSV round trip
TEST(FigureCsv, RoundTripsWithAndWithoutLabels) {
  re::FigureTable table;
  table.columns = {"a", "b"};
  table.rows = {{1.25, -3e-7}, {0.1, 1e300}};
  std::stringstream plain;
  re::write_figure_csv(plain, table);
  const re::FigureTable back = re::read_figure_csv(plain, false);
  EXPECT_EQ(back.columns, table.columns);
  ASSERT_EQ(back.rows, table.rows);  // shortest-round-trip format is exact

  table.label_column = "name";
  table.labels = {"first", "second"};
  std::stringstream labeled;
  re::write_figure_csv(labeled, table);
  const re::FigureTable labeled_back = re::read_figure_csv(labeled, true);
  EXPECT_EQ(labeled_back.label_column, "name");
  EXPECT_EQ(labeled_back.labels, table.labels);
  EXPECT_EQ(labeled_back.rows, table.rows);

  // Labels with CSV metacharacters round-trip through the RFC 4180
  // quoting the writer applies.
  table.labels = {"L2, bank0", "a \"quoted\" block"};
  std::stringstream hostile;
  re::write_figure_csv(hostile, table);
  const re::FigureTable hostile_back = re::read_figure_csv(hostile, true);
  EXPECT_EQ(hostile_back.labels, table.labels);
  EXPECT_EQ(hostile_back.rows, table.rows);
}

TEST(FigureCsv, MalformedInputsThrow) {
  {
    std::stringstream empty;
    EXPECT_THROW((void)re::read_figure_csv(empty, false), std::runtime_error);
  }
  {
    std::stringstream ragged("a,b\n1\n");
    EXPECT_THROW((void)re::read_figure_csv(ragged, false), std::runtime_error);
  }
  {
    std::stringstream text_cell("a,b\n1,spam\n");
    EXPECT_THROW((void)re::read_figure_csv(text_cell, false), std::runtime_error);
  }
  {
    std::stringstream label_only("name\nrow\n");
    EXPECT_THROW((void)re::read_figure_csv(label_only, true), std::runtime_error);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update_mode = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
