// Tests of the integrated co-simulator, the throttling governor and the
// reporting helpers.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cosim.h"
#include "core/report.h"
#include "core/system_config.h"
#include "core/throttling.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;
namespace th = brightsi::thermal;
namespace pd = brightsi::pdn;

namespace {

/// Coarse, fast configuration for the loopy tests.
co::SystemConfig fast_config() {
  co::SystemConfig config = co::power7_system_config();
  config.thermal_grid.axial_cells = 8;
  config.fvm.axial_steps = 80;
  config.channel_groups = 4;
  return config;
}

const co::CoSimReport& cached_report() {
  static const co::CoSimReport report = [] {
    co::IntegratedMpsocSystem system(fast_config());
    return system.run();
  }();
  return report;
}

// ------------------------------------------------------------------- config
TEST(SystemConfig, DefaultValidates) {
  EXPECT_NO_THROW(co::power7_system_config().validate());
}

TEST(SystemConfig, RejectsIndivisibleGroups) {
  auto config = co::power7_system_config();
  config.channel_groups = 7;  // 88 % 7 != 0
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(SystemConfig, RejectsBadPumpEfficiency) {
  auto config = co::power7_system_config();
  config.pump_efficiency = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// -------------------------------------------------------------------- cosim
TEST(CoSim, ConvergesAtNominalOperatingPoint) {
  const auto& r = cached_report();
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 8);
}

TEST(CoSim, PeakTemperatureInPaperBand) {
  const auto& r = cached_report();
  EXPECT_GT(r.peak_temperature_c, 33.0);
  EXPECT_LT(r.peak_temperature_c, 43.0);  // paper: 41 C
}

TEST(CoSim, SupplyFeedsCacheRail) {
  const auto& r = cached_report();
  EXPECT_TRUE(r.supply.feasible);
  EXPECT_TRUE(r.supply.vrm_window_ok);
  EXPECT_NEAR(r.supply.vrm_output_power_w, 5.0, 0.05);       // the 5 W rail
  EXPECT_NEAR(r.supply.array_power_w, 5.0 / 0.86, 0.1);      // + VRM loss
  EXPECT_GT(r.supply.bus_voltage_v, 0.9);
  EXPECT_LT(r.supply.bus_voltage_v, 1.3);
}

TEST(CoSim, GridWindowMatchesFig8) {
  const auto& r = cached_report();
  EXPECT_NEAR(r.grid.min_voltage_v, 0.962, 0.01);
  EXPECT_NEAR(r.grid.max_voltage_v, 0.995, 0.005);
}

TEST(CoSim, NetEnergyPositive) {
  // The paper's headline: generation exceeds pumping power.
  const auto& r = cached_report();
  EXPECT_GT(r.supply.array_power_w, r.pumping_power_w);
  EXPECT_GT(r.net_power_w, 0.0);
}

TEST(CoSim, HydraulicsMatchTableII) {
  const auto& r = cached_report();
  EXPECT_NEAR(r.mean_velocity_m_per_s, 1.6, 0.02);
  EXPECT_NEAR(r.pressure_drop_bar, 0.39, 0.02);
  EXPECT_NEAR(r.pumping_power_w, 0.88, 0.05);
}

TEST(CoSim, ThermalFeedbackRaisesCurrentSlightly) {
  // Paper: at nominal flow the temperature effect is at most ~4 %.
  const auto& r = cached_report();
  EXPECT_GT(r.thermal_current_gain, 0.0);
  EXPECT_LT(r.thermal_current_gain, 0.04);
}

TEST(CoSim, HotInletBoostsPowerTowardPaperNumber) {
  // Paper: 37 C inlet raises generated power by up to ~23 %.
  auto config = fast_config();
  config.array_spec.inlet_temperature_k = 310.15;
  co::IntegratedMpsocSystem hot(config);
  co::IntegratedMpsocSystem cold(fast_config());
  const double p_hot = hot.array().current_at_voltage(1.0, {310.15}) * 1.0;
  const double p_cold = cold.array().current_at_voltage(1.0) * 1.0;
  EXPECT_NEAR(p_hot / p_cold - 1.0, 0.22, 0.05);
}

TEST(CoSim, GroupedProfilesAverageCorrectly) {
  co::IntegratedMpsocSystem system(fast_config());
  std::vector<std::vector<double>> per_channel(88, std::vector<double>(4, 300.0));
  for (int c = 0; c < 88; ++c) {
    per_channel[static_cast<std::size_t>(c)].assign(4, 300.0 + c);
  }
  const auto groups = system.group_channel_profiles(per_channel);
  ASSERT_EQ(groups.size(), 4u);  // fast_config: 4 groups of 22
  EXPECT_NEAR(groups[0][0], 300.0 + 10.5, 1e-9);
  EXPECT_NEAR(groups[3][0], 300.0 + 76.5, 1e-9);
}

TEST(CoSim, SweepWithThermalFeedbackIsMonotone) {
  co::IntegratedMpsocSystem system(fast_config());
  const auto curve = system.array_sweep_with_thermal_feedback(0.6, 8);
  for (std::size_t i = 1; i < curve.points().size(); ++i) {
    EXPECT_GE(curve.points()[i].current_a, curve.points()[i - 1].current_a - 1e-9);
  }
}

TEST(CoSim, InfeasibleWhenRailDemandExceedsArray) {
  auto config = fast_config();
  config.power_spec.cache_w_per_cm2 = 40.0;  // ~100 W rail, way beyond the array
  co::IntegratedMpsocSystem system(config);
  const auto r = system.run();
  EXPECT_FALSE(r.supply.feasible);
}

// --------------------------------------------------------------- throttling
TEST(Throttling, IntegratedPackageStaysBright) {
  // With microfluidic cooling the POWER7+ runs all cores at full power.
  const auto config = fast_config();
  th::ThermalModel model(config.stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                         config.thermal_grid);
  co::ThrottleEnvironment env;
  env.thermal_model = &model;
  env.thermal_op.total_flow_m3_per_s = config.array_spec.total_flow_m3_per_s;
  env.thermal_op.inlet_temperature_k = config.array_spec.inlet_temperature_k;
  env.grid_spec = &config.grid_spec;
  env.taps = pd::make_vrm_grid(4, 4, ch::kPower7DieWidthM, ch::kPower7DieHeightM, 1.0, 25e-3);
  env.power_spec = config.power_spec;
  env.rail_filter = [](const ch::Block& b) { return ch::is_cache(b.type); };

  const auto result = co::find_max_core_activity(env, co::ThrottleConstraints{});
  EXPECT_DOUBLE_EQ(result.max_activity, 1.0);
  EXPECT_LT(result.peak_temperature_c, 85.0);
}

/// Conventional baseline environment: air-cooled package, edge-fed primary
/// rail supervising the whole chip (so core activity moves the rail load).
struct ConventionalBaseline {
  th::ThermalModel model;
  pd::PowerGridSpec core_rail;
  co::ThrottleEnvironment env;

  explicit ConventionalBaseline(const co::SystemConfig& config)
      : model(th::power7_conventional_stack(1200.0, 318.15), ch::kPower7DieWidthM,
              ch::kPower7DieHeightM, config.thermal_grid) {
    core_rail.sheet_resistance_ohm_per_sq = 5e-3;  // full-metal primary rail
    env.thermal_model = &model;
    env.grid_spec = &core_rail;
    env.taps = pd::make_edge_taps(20, ch::kPower7DieWidthM, ch::kPower7DieHeightM, 1.0, 2e-3);
    env.power_spec = config.power_spec;
    // default rail_filter: every block (the conventional core rail)
  }
};

TEST(Throttling, ConventionalPackageGoesDark) {
  // Air-cooled baseline with a modest sink cannot hold full activity.
  const ConventionalBaseline baseline(fast_config());
  const auto result = co::find_max_core_activity(baseline.env, co::ThrottleConstraints{});
  EXPECT_LT(result.max_activity, 0.9);
  EXPECT_GT(result.max_activity, 0.0);  // partial operation still possible
  EXPECT_TRUE(result.thermally_limited || result.voltage_limited);
  EXPECT_LE(result.peak_temperature_c, 85.5);
}

TEST(Throttling, TighterLimitDarkensMore) {
  const ConventionalBaseline baseline(fast_config());
  co::ThrottleConstraints strict;
  strict.max_junction_c = 70.0;
  co::ThrottleConstraints loose;
  loose.max_junction_c = 95.0;
  EXPECT_LT(co::find_max_core_activity(baseline.env, strict).max_activity,
            co::find_max_core_activity(baseline.env, loose).max_activity);
}

// ------------------------------------------------------------------ report
TEST(Report, TextTableFormats) {
  co::TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"long-cell", "x"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-cell"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, NumFormatsPrecision) {
  EXPECT_EQ(co::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(co::TextTable::num(41.0, 1), "41.0");
}

TEST(Report, DownsamplePreservesMean) {
  brightsi::numerics::Grid2<double> field(40, 30, 2.5);
  const auto small = co::downsample(field, 8, 6);
  EXPECT_EQ(small.nx(), 8);
  EXPECT_EQ(small.ny(), 6);
  for (const double v : small.data()) {
    EXPECT_NEAR(v, 2.5, 1e-12);
  }
}

TEST(Report, AsciiMapRendersGradient) {
  brightsi::numerics::Grid2<double> field(16, 8, 0.0);
  for (int iy = 0; iy < 8; ++iy) {
    for (int ix = 0; ix < 16; ++ix) {
      field(ix, iy) = ix;
    }
  }
  std::ostringstream os;
  co::print_ascii_map(os, field, "test", "C", 16, 8);
  const std::string out = os.str();
  EXPECT_NE(out.find('@'), std::string::npos);  // hottest shade present
  EXPECT_NE(out.find("test"), std::string::npos);
}

TEST(Report, FieldCsvHasHeaderAndRows) {
  brightsi::numerics::Grid2<double> field(2, 2, 1.0);
  std::ostringstream os;
  co::write_field_csv(os, field, 1e-3, 1e-3);
  const std::string out = os.str();
  EXPECT_EQ(out.find("x_mm,y_mm,value"), 0u);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Report, ResultsFileRoundTrip) {
  const std::string path = co::write_results_file(
      "unit_test_artifact.csv", [](std::ostream& os) { os << "a,b\n1,2\n"; });
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Report, ResultsFileRejectsPathEscapes) {
  EXPECT_THROW((void)co::write_results_file("../evil.csv", [](std::ostream&) {}),
               std::invalid_argument);
  EXPECT_THROW((void)co::write_results_file("", [](std::ostream&) {}),
               std::invalid_argument);
}

TEST(Report, SeriesCsvRejectsRagged) {
  std::ostringstream os;
  EXPECT_THROW(
      co::write_series_csv(os, {"a", "b"}, {{1.0, 2.0}, {3.0}}),
      std::invalid_argument);
  co::write_series_csv(os, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(os.str(), "a,b\n1,3\n2,4\n");
}

}  // namespace
