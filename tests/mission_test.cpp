// Tests of the mission simulator: SOC integration, supply feasibility
// tracking, thermal/workload coupling and failure reporting.
#include <cmath>

#include <gtest/gtest.h>

#include "core/mission.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;
namespace ec = brightsi::electrochem;

namespace {

co::MissionConfig fast_mission(double duration_s = 1.0, double tank_liters = 1.0) {
  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 8;
  config.system.fvm.axial_steps = 60;
  config.workload = ch::full_load_trace(duration_s);
  config.reservoir.tank_volume_m3 = tank_liters * 1e-3;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.dt_s = 0.1;
  return config;
}

TEST(Mission, RecordsOneSamplePerStep) {
  const auto result = co::run_mission(fast_mission(0.5));
  EXPECT_EQ(result.samples.size(), 5u);
  EXPECT_EQ(result.samples.front().phase, "full-load");
}

TEST(Mission, SocDecreasesMonotonically) {
  const auto result = co::run_mission(fast_mission(1.0));
  double previous = 1.0;
  for (const auto& s : result.samples) {
    EXPECT_LT(s.state_of_charge, previous);
    previous = s.state_of_charge;
  }
  EXPECT_DOUBLE_EQ(result.final_soc, result.samples.back().state_of_charge);
}

TEST(Mission, NominalPlatformSustainsSupply) {
  const auto result = co::run_mission(fast_mission(1.0));
  EXPECT_TRUE(result.supply_always_ok);
  for (const auto& s : result.samples) {
    EXPECT_TRUE(s.supply_ok);
    EXPECT_GT(s.bus_current_a, 4.0);  // ~5.8 A at the cache-rail demand
    EXPECT_LT(s.bus_current_a, 8.0);
  }
}

TEST(Mission, EnergyBookkeepingConsistent) {
  const auto config = fast_mission(1.0);
  const auto result = co::run_mission(config);
  // Charge drawn equals the SOC drop times capacity.
  const double charge_drawn =
      (config.initial_soc - result.final_soc) * config.reservoir.capacity_coulomb();
  double charge_integrated = 0.0;
  for (const auto& s : result.samples) {
    charge_integrated += s.bus_current_a * config.dt_s;
  }
  EXPECT_NEAR(charge_drawn, charge_integrated, charge_integrated * 1e-9);
  EXPECT_GT(result.energy_delivered_j, 0.0);
  // Energy ~ V * I * t with V in [1.0, 1.3]: sanity bounds.
  EXPECT_LT(result.energy_delivered_j, 1.4 * charge_integrated);
  EXPECT_GT(result.energy_delivered_j, 0.8 * charge_integrated);
}

TEST(Mission, TinyTankDrainsVisiblyFaster) {
  const auto big = co::run_mission(fast_mission(1.0, 1.0));
  const auto small = co::run_mission(fast_mission(1.0, 0.001));  // 1 mL per side
  EXPECT_LT(small.final_soc, big.final_soc);
}

TEST(Mission, OverloadedRailReportedNotThrown) {
  auto config = fast_mission(0.5);
  config.system.power_spec.cache_w_per_cm2 = 40.0;  // ~100 W rail
  const auto result = co::run_mission(config);
  EXPECT_FALSE(result.supply_always_ok);
  for (const auto& s : result.samples) {
    EXPECT_FALSE(s.supply_ok);
  }
  // Nothing was drawn from the tanks.
  EXPECT_NEAR(result.final_soc, config.initial_soc, 1e-12);
}

TEST(Mission, WorkloadPhasesShowUpThermally) {
  auto config = fast_mission();
  config.workload = ch::burst_trace(1);
  const auto result = co::run_mission(config);
  double idle_peak = 0.0, burst_peak = 0.0;
  for (const auto& s : result.samples) {
    if (s.phase == "idle") {
      idle_peak = std::max(idle_peak, s.peak_temperature_c);
    }
    if (s.phase == "burst") {
      burst_peak = std::max(burst_peak, s.peak_temperature_c);
    }
  }
  EXPECT_GT(burst_peak, idle_peak + 0.5);
  EXPECT_EQ(result.max_peak_temperature_c,
            std::max({idle_peak, burst_peak, result.max_peak_temperature_c}));
}

TEST(Mission, ValidatesConfiguration) {
  auto config = fast_mission();
  config.dt_s = 0.0;
  EXPECT_THROW((void)co::run_mission(config), std::invalid_argument);
  config = fast_mission();
  config.initial_soc = 1.5;
  EXPECT_THROW((void)co::run_mission(config), std::invalid_argument);
}

TEST(Mission, RejectsStepExceedingWorkloadDuration) {
  // A dt longer than the trace used to truncate to zero steps and return a
  // "successful" empty mission; it must be a configuration error.
  auto config = fast_mission(1.0);
  config.dt_s = 2.0;
  EXPECT_THROW((void)co::run_mission(config), std::invalid_argument);
}

TEST(Mission, SamplesCoverTheFullTraceDuration) {
  // Awkward dt: 1.0 / 0.3 leaves a residual step. The last sample must land
  // exactly on the trace end instead of dropping the tail.
  auto config = fast_mission(1.0);
  config.dt_s = 0.3;
  const auto result = co::run_mission(config);
  ASSERT_EQ(result.samples.size(), 4u);
  EXPECT_NEAR(result.samples.back().time_s, config.workload.total_duration_s(), 1e-9);
  EXPECT_NEAR(result.samples.back().dt_s, 0.1, 1e-12);

  // Divisible-but-inexact dt: 10 steps, tail kept.
  config = fast_mission(1.0);
  config.dt_s = 0.1;
  const auto divisible = co::run_mission(config);
  ASSERT_EQ(divisible.samples.size(), 10u);
  EXPECT_NEAR(divisible.samples.back().time_s, 1.0, 1e-9);
}

TEST(Mission, EnergyConservedAcrossScheduleModes) {
  // Phase-aligned vs plain-dt stepping integrate the same mission: the
  // delivered energy and drained charge agree within the discretization
  // tolerance even though the step sequences differ.
  auto config = fast_mission();
  config.workload = ch::burst_trace(1);  // phases 0.6 | 1.2 | 1.2
  config.dt_s = 0.25;                    // divides none of them
  config.reservoir.tank_volume_m3 = 1e-5;  // 10 mL: visible SOC motion
  const auto aligned = co::run_mission(config);
  config.align_phase_boundaries = false;
  const auto plain = co::run_mission(config);

  ASSERT_GT(aligned.energy_delivered_j, 0.0);
  EXPECT_NEAR(aligned.energy_delivered_j, plain.energy_delivered_j,
              0.05 * aligned.energy_delivered_j);
  EXPECT_NEAR(aligned.final_soc, plain.final_soc, 5e-4);
  // Both schedules cover the full duration.
  EXPECT_NEAR(aligned.samples.back().time_s, 3.0, 1e-9);
  EXPECT_NEAR(plain.samples.back().time_s, 3.0, 1e-9);
}

TEST(Mission, CheckpointResumesSeamlessly) {
  const auto whole = co::run_mission(fast_mission(1.0));

  auto leg = fast_mission(0.5);
  const auto first = co::run_mission(leg);
  auto leg2 = leg;
  leg2.initial_soc = first.final_soc;
  const auto second = co::run_mission(leg2, nullptr, &first.final_state);

  // The stitched mission walks the same step sequence as the whole one.
  EXPECT_NEAR(second.final_soc, whole.final_soc, 1e-6);
  EXPECT_NEAR(second.samples.back().peak_temperature_c,
              whole.samples.back().peak_temperature_c, 1e-3);
  EXPECT_NEAR(first.energy_delivered_j + second.energy_delivered_j,
              whole.energy_delivered_j, 1e-3 * whole.energy_delivered_j);
}

TEST(Mission, SampleDecimationPreservesTheIntegration) {
  auto config = fast_mission(1.0);
  const auto all = co::run_mission(config);
  config.sample_stride = 4;
  const auto thinned = co::run_mission(config);
  // Recording every 4th step changes the sample count only — the
  // reservoir/energy integration still runs every step.
  ASSERT_EQ(all.samples.size(), 10u);
  ASSERT_EQ(thinned.samples.size(), 3u);  // steps 4, 8 and the final 10th
  EXPECT_NEAR(thinned.samples.back().time_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(thinned.final_soc, all.final_soc);
  EXPECT_DOUBLE_EQ(thinned.energy_delivered_j, all.energy_delivered_j);
  EXPECT_DOUBLE_EQ(thinned.max_peak_temperature_c, all.max_peak_temperature_c);
}

TEST(Mission, ReportsThermalWorkCounters) {
  const auto result = co::run_mission(fast_mission(0.5));
  EXPECT_EQ(result.steps, 5);
  EXPECT_GT(result.thermal_iterations, 0);
  EXPECT_GE(result.thermal_solve_time_s, 0.0);
  EXPECT_GT(result.final_state.size(), 0u);  // non-empty checkpoint
}

TEST(Mission, SharedModelMustMatchTheConfig) {
  const auto config = fast_mission(0.5);
  const auto floorplan = ch::make_power7_floorplan(config.system.power_spec);
  brightsi::thermal::ThermalGridSettings grid = config.system.thermal_grid;
  grid.axial_cells = 4;  // differs from the config's 8
  auto mismatched = std::make_shared<const brightsi::thermal::ThermalModel>(
      config.system.stack, floorplan.die_width(), floorplan.die_height(), grid);
  EXPECT_THROW((void)co::run_mission(config, mismatched), std::invalid_argument);
}

}  // namespace
