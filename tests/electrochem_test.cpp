// Tests of the electrochemistry module: Nernst equilibria, Butler-Volmer
// kinetics (and its asymptotics/inversion), temperature laws and the
// vanadium parameter sets of paper Tables I and II.
#include <cmath>

#include <gtest/gtest.h>

#include "electrochem/butler_volmer.h"
#include "electrochem/constants.h"
#include "electrochem/nernst.h"
#include "electrochem/species.h"
#include "electrochem/temperature_laws.h"
#include "electrochem/vanadium.h"

namespace ec = brightsi::electrochem;

namespace {

constexpr double kT = 300.0;

ec::HalfCellSpec test_half_cell(double k0 = 1e-5, double alpha = 0.5) {
  ec::HalfCellSpec h;
  h.couple = {"test", 0.5, 1, alpha};
  h.oxidized_inlet_concentration_mol_per_m3 = 100.0;
  h.reduced_inlet_concentration_mol_per_m3 = 900.0;
  h.kinetic_rate_m_per_s = {k0, 0.0, kT};
  h.diffusivity_m2_per_s = {1e-10, 0.0, kT};
  return h;
}

// ---------------------------------------------------------------- constants
TEST(Constants, ThermalVoltageAt25C) {
  EXPECT_NEAR(ec::constants::rt_over_f(298.15), 0.025693, 1e-5);
}

TEST(Constants, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(ec::constants::celsius_to_kelvin(27.0), 300.15);
  EXPECT_DOUBLE_EQ(ec::constants::kelvin_to_celsius(300.15), 27.0);
}

// ------------------------------------------------------------------- Nernst
TEST(Nernst, StandardPotentialAtEqualConcentrations) {
  const ec::RedoxCouple couple{"x", 0.7, 1, 0.5};
  EXPECT_DOUBLE_EQ(ec::nernst_potential(couple, 50.0, 50.0, kT), 0.7);
}

TEST(Nernst, ShiftsWithConcentrationRatio) {
  const ec::RedoxCouple couple{"x", 0.0, 1, 0.5};
  const double e10 = ec::nernst_potential(couple, 100.0, 10.0, kT);
  EXPECT_NEAR(e10, ec::constants::rt_over_f(kT) * std::log(10.0), 1e-12);
}

TEST(Nernst, MultiElectronDividesSlope) {
  const ec::RedoxCouple one{"x", 0.0, 1, 0.5};
  const ec::RedoxCouple two{"y", 0.0, 2, 0.5};
  EXPECT_NEAR(ec::nernst_potential(two, 100.0, 10.0, kT),
              ec::nernst_potential(one, 100.0, 10.0, kT) / 2.0, 1e-12);
}

TEST(Nernst, PaperTableIValidationPotentials) {
  // Table I anolyte: 80 V3+ / 920 V2+ at E0 = -0.255: E = -0.255 + RT/F ln(80/920).
  const ec::RedoxCouple anode{"V2/V3", -0.255, 1, 0.5};
  const double e_neg = ec::nernst_potential(anode, 80.0, 920.0, kT);
  EXPECT_NEAR(e_neg, -0.255 + 0.02585 * std::log(80.0 / 920.0), 1e-3);
  EXPECT_NEAR(e_neg, -0.318, 2e-3);

  const ec::RedoxCouple cathode{"V4/V5", 0.991, 1, 0.5};
  const double e_pos = ec::nernst_potential(cathode, 992.0, 8.0, kT);
  EXPECT_NEAR(e_pos, 1.116, 2e-3);
}

TEST(Nernst, ZeroConcentrationIsFloored) {
  const ec::RedoxCouple couple{"x", 0.0, 1, 0.5};
  EXPECT_TRUE(std::isfinite(ec::nernst_potential(couple, 0.0, 100.0, kT)));
  EXPECT_TRUE(std::isfinite(ec::nernst_potential(couple, 100.0, 0.0, kT)));
}

TEST(Nernst, ValidationChemistryOcv) {
  const auto chem = ec::kjeang2007_validation_chemistry();
  EXPECT_NEAR(chem.standard_cell_voltage(), 1.246, 1e-3);
  EXPECT_NEAR(ec::open_circuit_voltage(chem, kT), 1.434, 2e-3);
}

TEST(Nernst, ArrayChemistryOcv) {
  const auto chem = ec::power7_array_chemistry();
  EXPECT_NEAR(chem.standard_cell_voltage(), 1.255, 1e-3);
  // 2000:1 concentration ratios push the OCV well above the standard value.
  EXPECT_NEAR(ec::open_circuit_voltage(chem, kT), 1.648, 2e-3);
}

// ---------------------------------------------------------- exchange current
TEST(ExchangeCurrent, MatchesDefinition) {
  const auto h = test_half_cell(2e-5);
  const double i0 = ec::exchange_current_density(h, 80.0, 920.0, kT);
  const double expected = ec::constants::faraday_c_per_mol * 2e-5 *
                          std::pow(80.0, 0.5) * std::pow(920.0, 0.5);
  EXPECT_NEAR(i0, expected, 1e-9);
}

TEST(ExchangeCurrent, ZeroWhenSpeciesAbsent) {
  const auto h = test_half_cell();
  EXPECT_DOUBLE_EQ(ec::exchange_current_density(h, 0.0, 900.0, kT), 0.0);
}

TEST(ExchangeCurrent, AsymmetricAlphaWeighting) {
  auto h = test_half_cell(1e-5, 0.3);
  const double i0 = ec::exchange_current_density(h, 100.0, 400.0, kT);
  const double expected = ec::constants::faraday_c_per_mol * 1e-5 *
                          std::pow(100.0, 0.3) * std::pow(400.0, 0.7);
  EXPECT_NEAR(i0, expected, 1e-9);
}

// -------------------------------------------------------------Butler-Volmer
TEST(ButlerVolmer, ZeroCurrentAtZeroOverpotential) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 100.0;
  s.temperature_k = kT;
  EXPECT_DOUBLE_EQ(ec::butler_volmer_current(s, 0.0), 0.0);
}

TEST(ButlerVolmer, LinearRegimeSlope) {
  // For small eta: i ~ i0 * F eta / RT (alpha-sum = 1 for one electron).
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 50.0;
  s.temperature_k = kT;
  const double eta = 1e-4;
  const double i = ec::butler_volmer_current(s, eta);
  EXPECT_NEAR(i, 50.0 * ec::constants::f_over_rt(kT) * eta, 1e-3);
}

TEST(ButlerVolmer, TafelAsymptote) {
  // At large anodic eta the cathodic branch vanishes:
  // i -> i0 exp(alpha f eta).
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 10.0;
  s.temperature_k = kT;
  const double eta = 0.3;
  const double i = ec::butler_volmer_current(s, eta);
  const double tafel = 10.0 * std::exp(0.5 * ec::constants::f_over_rt(kT) * eta);
  EXPECT_NEAR(i / tafel, 1.0, 1e-2);
}

TEST(ButlerVolmer, AntisymmetricForSymmetricAlpha) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 42.0;
  s.temperature_k = kT;
  EXPECT_NEAR(ec::butler_volmer_current(s, 0.1), -ec::butler_volmer_current(s, -0.1), 1e-9);
}

TEST(ButlerVolmer, SurfaceRatiosScaleBranches) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 10.0;
  s.temperature_k = kT;
  s.reduced_surface_ratio = 0.5;  // halve the anodic branch
  s.oxidized_surface_ratio = 1.0;
  const double eta = 0.2;
  const double full = 10.0 * std::exp(0.5 * ec::constants::f_over_rt(kT) * eta);
  EXPECT_NEAR(ec::butler_volmer_current(s, eta) / full, 0.5, 1e-2);
}

TEST(ButlerVolmer, SlopeMatchesFiniteDifference) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 25.0;
  s.temperature_k = kT;
  s.reduced_surface_ratio = 0.8;
  s.oxidized_surface_ratio = 0.9;
  const double eta = 0.05;
  const double h = 1e-7;
  const double fd = (ec::butler_volmer_current(s, eta + h) -
                     ec::butler_volmer_current(s, eta - h)) /
                    (2.0 * h);
  EXPECT_NEAR(ec::butler_volmer_slope(s, eta), fd, std::abs(fd) * 1e-6);
}

class BvInversion : public ::testing::TestWithParam<double> {};

TEST_P(BvInversion, OverpotentialRoundTrip) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 30.0;
  s.temperature_k = kT;
  s.reduced_surface_ratio = 0.7;
  s.oxidized_surface_ratio = 1.2;
  const double i_target = GetParam();
  const double eta = ec::overpotential_for_current(s, i_target);
  EXPECT_NEAR(ec::butler_volmer_current(s, eta), i_target,
              1e-8 * std::max(1.0, std::abs(i_target)));
}

INSTANTIATE_TEST_SUITE_P(Currents, BvInversion,
                         ::testing::Values(-500.0, -30.0, -0.001, 0.001, 5.0, 300.0, 5000.0));

TEST(BvInversionAsymmetric, RoundTripWithNonHalfAlpha) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 12.0;
  s.anodic_transfer_coefficient = 0.35;
  s.temperature_k = kT;
  for (const double i_target : {-80.0, -1.0, 2.0, 90.0}) {
    const double eta = ec::overpotential_for_current(s, i_target);
    EXPECT_NEAR(ec::butler_volmer_current(s, eta), i_target, 1e-6 * std::abs(i_target));
  }
}

TEST(BvInversion, ThrowsOnImpossibleDirection) {
  ec::ButlerVolmerState s;
  s.exchange_current_density_a_per_m2 = 10.0;
  s.temperature_k = kT;
  s.reduced_surface_ratio = 0.0;  // no reductant at the surface
  EXPECT_THROW((void)ec::overpotential_for_current(s, 10.0), std::invalid_argument);
}

TEST(MassTransportOverpotential, NernstianShift) {
  EXPECT_NEAR(ec::mass_transport_overpotential(0.5, 1, kT),
              ec::constants::rt_over_f(kT) * std::log(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(ec::mass_transport_overpotential(1.0, 1, kT), 0.0);
}

// ---------------------------------------------------------- temperature laws
TEST(TemperatureLaws, ArrheniusIdentityAtReference) {
  const ec::ArrheniusLaw law{1e-5, 30000.0, 300.0};
  EXPECT_DOUBLE_EQ(law.at(300.0), 1e-5);
}

TEST(TemperatureLaws, ArrheniusIncreasesWithT) {
  const ec::ArrheniusLaw law{1.0, 26000.0, 300.0};
  EXPECT_GT(law.at(310.0), 1.0);
  // dln/dT = Ea / (R T^2) ~ 3.5 %/K at 300 K for 26 kJ/mol.
  EXPECT_NEAR(law.at(301.0) / law.at(300.0) - 1.0, 26000.0 / (8.314 * 300.0 * 300.0), 1e-3);
}

TEST(TemperatureLaws, ViscosityDecreasesWithT) {
  const ec::ViscosityLaw law{2.53e-3, 16000.0, 300.0};
  EXPECT_LT(law.at(310.0), 2.53e-3);
  EXPECT_DOUBLE_EQ(law.at(300.0), 2.53e-3);
}

TEST(TemperatureLaws, LinearLawSlope) {
  const ec::LinearLaw law{60.0, 0.016, 300.0};
  EXPECT_NEAR(law.at(310.0), 60.0 * 1.16, 1e-9);
  EXPECT_DOUBLE_EQ(law.at(300.0), 60.0);
}

TEST(TemperatureLaws, RejectNonPositiveTemperature) {
  const ec::ArrheniusLaw law{1.0, 1000.0, 300.0};
  EXPECT_THROW((void)law.at(0.0), std::invalid_argument);
  EXPECT_THROW((void)law.at(-5.0), std::invalid_argument);
}

// ------------------------------------------------------------- presets
TEST(VanadiumPresets, TableIParameters) {
  const auto chem = ec::kjeang2007_validation_chemistry();
  EXPECT_DOUBLE_EQ(chem.anode.couple.standard_potential_v, -0.255);
  EXPECT_DOUBLE_EQ(chem.cathode.couple.standard_potential_v, 0.991);
  EXPECT_DOUBLE_EQ(chem.anode.oxidized_inlet_concentration_mol_per_m3, 80.0);
  EXPECT_DOUBLE_EQ(chem.anode.reduced_inlet_concentration_mol_per_m3, 920.0);
  EXPECT_DOUBLE_EQ(chem.cathode.oxidized_inlet_concentration_mol_per_m3, 992.0);
  EXPECT_DOUBLE_EQ(chem.cathode.reduced_inlet_concentration_mol_per_m3, 8.0);
  EXPECT_DOUBLE_EQ(chem.anode.diffusivity_m2_per_s.reference_value, 1.7e-10);
  EXPECT_DOUBLE_EQ(chem.cathode.diffusivity_m2_per_s.reference_value, 1.3e-10);
  EXPECT_DOUBLE_EQ(chem.anode.kinetic_rate_m_per_s.reference_value, 2.0e-5);
  EXPECT_DOUBLE_EQ(chem.cathode.kinetic_rate_m_per_s.reference_value, 1.0e-5);
  EXPECT_DOUBLE_EQ(chem.electrolyte.density_kg_per_m3.reference_value, 1260.0);
  EXPECT_DOUBLE_EQ(chem.electrolyte.dynamic_viscosity_pa_s.reference_value_pa_s, 2.53e-3);
}

TEST(VanadiumPresets, TableIIParameters) {
  const auto chem = ec::power7_array_chemistry();
  EXPECT_DOUBLE_EQ(chem.cathode.couple.standard_potential_v, 1.0);
  EXPECT_DOUBLE_EQ(chem.anode.reduced_inlet_concentration_mol_per_m3, 2000.0);
  EXPECT_DOUBLE_EQ(chem.cathode.oxidized_inlet_concentration_mol_per_m3, 2000.0);
  EXPECT_DOUBLE_EQ(chem.anode.diffusivity_m2_per_s.reference_value, 4.13e-10);
  EXPECT_DOUBLE_EQ(chem.cathode.diffusivity_m2_per_s.reference_value, 1.26e-10);
  EXPECT_DOUBLE_EQ(chem.anode.kinetic_rate_m_per_s.reference_value, 5.33e-5);
  EXPECT_DOUBLE_EQ(chem.cathode.kinetic_rate_m_per_s.reference_value, 4.67e-5);
  EXPECT_DOUBLE_EQ(chem.electrolyte.thermal_conductivity_w_per_m_k, 0.67);
  EXPECT_DOUBLE_EQ(chem.electrolyte.volumetric_heat_capacity_j_per_m3_k, 4.187e6);
}

TEST(VanadiumPresets, ValidationPassesForBoth) {
  EXPECT_NO_THROW(ec::kjeang2007_validation_chemistry().validate());
  EXPECT_NO_THROW(ec::power7_array_chemistry().validate());
}

TEST(SpeciesValidation, RejectsBadTransferCoefficient) {
  auto h = test_half_cell();
  h.couple.anodic_transfer_coefficient = 1.5;
  EXPECT_THROW(h.validate(), std::invalid_argument);
}

TEST(SpeciesValidation, RejectsEmptyInlet) {
  auto h = test_half_cell();
  h.oxidized_inlet_concentration_mol_per_m3 = 0.0;
  h.reduced_inlet_concentration_mol_per_m3 = 0.0;
  EXPECT_THROW(h.validate(), std::invalid_argument);
}

TEST(SpeciesValidation, RejectsInvertedCell) {
  auto chem = ec::power7_array_chemistry();
  std::swap(chem.anode, chem.cathode);
  EXPECT_THROW(chem.validate(), std::invalid_argument);
}

}  // namespace
