// Tests of the extension modules: electrolyte reservoir / state of charge,
// workload traces and the transient trace runner.
#include <cmath>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "chip/workload.h"
#include "electrochem/nernst.h"
#include "electrochem/reservoir.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "thermal/model.h"
#include "thermal/trace_runner.h"

namespace ec = brightsi::electrochem;
namespace ch = brightsi::chip;
namespace th = brightsi::thermal;
namespace fc = brightsi::flowcell;

namespace {

ec::ReservoirSpec default_reservoir_spec() {
  ec::ReservoirSpec spec;
  spec.tank_volume_m3 = 1e-3;
  spec.total_vanadium_mol_per_m3 = 2000.0;
  spec.chemistry = ec::power7_array_chemistry();
  return spec;
}

// --------------------------------------------------------------- reservoir
TEST(Reservoir, CapacityArithmetic) {
  const auto spec = default_reservoir_spec();
  // F * 2000 mol/m3 * 1e-3 m3 = 192,970 C = 53.6 Ah.
  EXPECT_NEAR(spec.capacity_coulomb(), 96485.0 * 2.0, 1.0);
  EXPECT_NEAR(spec.capacity_ah(), 53.6, 0.1);
}

TEST(Reservoir, ChemistryTracksSoc) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.75);
  const auto chem = reservoir.chemistry_at_soc();
  EXPECT_NEAR(chem.anode.reduced_inlet_concentration_mol_per_m3, 1500.0, 1e-6);
  EXPECT_NEAR(chem.anode.oxidized_inlet_concentration_mol_per_m3, 500.0, 1e-6);
  EXPECT_NEAR(chem.cathode.oxidized_inlet_concentration_mol_per_m3, 1500.0, 1e-6);
  EXPECT_NEAR(chem.cathode.reduced_inlet_concentration_mol_per_m3, 500.0, 1e-6);
}

TEST(Reservoir, VanadiumConservedAcrossSoc) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.5);
  for (const double soc : {0.05, 0.3, 0.7, 0.95}) {
    const auto chem = reservoir.chemistry_at(soc);
    EXPECT_NEAR(chem.anode.reduced_inlet_concentration_mol_per_m3 +
                    chem.anode.oxidized_inlet_concentration_mol_per_m3,
                2000.0, 1.0);
  }
}

TEST(Reservoir, OcvFallsWithDischarge) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.9);
  const double ocv_high = ec::open_circuit_voltage(reservoir.chemistry_at(0.9), 300.0);
  const double ocv_mid = ec::open_circuit_voltage(reservoir.chemistry_at(0.5), 300.0);
  const double ocv_low = ec::open_circuit_voltage(reservoir.chemistry_at(0.1), 300.0);
  EXPECT_GT(ocv_high, ocv_mid);
  EXPECT_GT(ocv_mid, ocv_low);
  // SOC 0.5 has equal concentrations on both couples: OCV = E0_cell.
  EXPECT_NEAR(ocv_mid, reservoir.spec().chemistry.standard_cell_voltage(), 1e-6);
}

TEST(Reservoir, DischargeBookkeeping) {
  ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.9);
  const double cap = reservoir.spec().capacity_coulomb();
  // Draw 10 % of capacity.
  reservoir.discharge(cap * 0.1 / 100.0, 100.0);
  EXPECT_NEAR(reservoir.state_of_charge(), 0.8, 1e-9);
  // Charging reverses it.
  reservoir.discharge(-cap * 0.05 / 50.0, 50.0);
  EXPECT_NEAR(reservoir.state_of_charge(), 0.85, 1e-9);
}

TEST(Reservoir, DischargeClampsAtEmpty) {
  ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.1);
  reservoir.discharge(1e9, 1e6);
  EXPECT_DOUBLE_EQ(reservoir.state_of_charge(), 0.0);
}

TEST(Reservoir, RuntimeMatchesCapacity) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.95);
  const double runtime = reservoir.runtime_to_floor_s(5.8, 0.1);
  EXPECT_NEAR(runtime, (0.95 - 0.1) * reservoir.spec().capacity_coulomb() / 5.8, 1e-6);
  EXPECT_THROW((void)reservoir.runtime_to_floor_s(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)reservoir.runtime_to_floor_s(1.0, 0.99), std::invalid_argument);
}

TEST(Reservoir, CrossoverShortensRuntime) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.95);
  EXPECT_LT(reservoir.runtime_to_floor_s(5.8, 0.1, 1.0),
            reservoir.runtime_to_floor_s(5.8, 0.1, 0.0));
}

TEST(Reservoir, IdealEnergyBounds) {
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.95);
  const double energy = reservoir.ideal_energy_to_floor_j(0.05);
  const double charge = 0.9 * reservoir.spec().capacity_coulomb();
  // Energy between charge * min OCV and charge * max OCV over the window.
  const double ocv_max = ec::open_circuit_voltage(reservoir.chemistry_at(0.95), 300.0);
  const double ocv_min = ec::open_circuit_voltage(reservoir.chemistry_at(0.05), 300.0);
  EXPECT_GT(energy, charge * ocv_min);
  EXPECT_LT(energy, charge * ocv_max);
}

TEST(Reservoir, ArrayOutputDegradesGracefullyWithSoc) {
  // The supply sags smoothly with the Nernst OCV as the tanks discharge
  // (~25 % between SOC 0.8 and 0.4) instead of collapsing — the flow-cell
  // version of the paper's "steady energy supply" claim. Near-empty tanks
  // finally do collapse.
  const ec::ElectrolyteReservoir reservoir(default_reservoir_spec(), 0.95);
  const fc::FlowCellArray high(fc::power7_array_spec(), reservoir.chemistry_at(0.8));
  const fc::FlowCellArray mid(fc::power7_array_spec(), reservoir.chemistry_at(0.4));
  const double i_high = high.current_at_voltage(1.0);
  const double i_mid = mid.current_at_voltage(1.0);
  EXPECT_GT(i_mid / i_high, 0.65);
  EXPECT_LT(i_mid / i_high, 1.0);
  const fc::FlowCellArray empty(fc::power7_array_spec(), reservoir.chemistry_at(0.01));
  EXPECT_LT(empty.current_at_voltage(1.0), 0.5 * i_mid);
}

TEST(Reservoir, RejectsBadConstruction) {
  EXPECT_THROW(ec::ElectrolyteReservoir(default_reservoir_spec(), 0.0),
               std::invalid_argument);
  auto spec = default_reservoir_spec();
  spec.tank_volume_m3 = 0.0;
  EXPECT_THROW(ec::ElectrolyteReservoir(spec, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------- workload
TEST(Workload, TraceDurationAndLookup) {
  const auto trace = ch::burst_trace(2);
  EXPECT_NEAR(trace.total_duration_s(), 2.0 * (0.6 + 1.2 + 1.2), 1e-12);
  EXPECT_EQ(trace.phase_at(0.1).name, "idle");
  EXPECT_EQ(trace.phase_at(0.7).name, "burst");
  EXPECT_EQ(trace.phase_at(2.0).name, "sustain");
  // Second repeat cycles back.
  EXPECT_EQ(trace.phase_at(3.1).name, "idle");
  EXPECT_THROW((void)trace.phase_at(100.0), std::out_of_range);
}

TEST(Workload, ApplyPhaseScalesDensities) {
  ch::WorkloadPhase phase{"half", 1.0, 0.5, 1.0, 1.0, 1.0};
  const auto fp = ch::apply_phase(ch::Power7PowerSpec{}, phase);
  const auto nominal = ch::make_power7_floorplan();
  EXPECT_NEAR(fp.power_of_type(ch::BlockType::kCore),
              0.5 * nominal.power_of_type(ch::BlockType::kCore), 1e-9);
  EXPECT_NEAR(fp.cache_power(), nominal.cache_power(), 1e-9);
}

TEST(Workload, MemoryBoundPresetShape) {
  const auto trace = ch::memory_bound_trace();
  const auto& phase = trace.phases().front();
  EXPECT_LT(phase.core_activity, 0.5);
  EXPECT_DOUBLE_EQ(phase.cache_activity, 1.0);
}

TEST(Workload, RejectsBadPhases) {
  EXPECT_THROW(ch::WorkloadTrace(std::vector<ch::WorkloadPhase>{}), std::invalid_argument);
  ch::WorkloadPhase bad{"", 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(ch::WorkloadTrace({bad}), std::invalid_argument);
  ch::WorkloadPhase negative{"x", 1.0, -0.1, 1.0, 1.0, 1.0};
  EXPECT_THROW(ch::WorkloadTrace({negative}), std::invalid_argument);
}

// ------------------------------------------------------------ trace runner
class TraceRunnerTest : public ::testing::Test {
 protected:
  static th::ThermalModel make_model() {
    th::ThermalModel::GridSettings grid;
    grid.axial_cells = 8;
    return th::ThermalModel(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                            ch::kPower7DieHeightM, grid);
  }
  static th::OperatingPoint op() {
    th::OperatingPoint o;
    o.total_flow_m3_per_s = 676e-6 / 60.0;
    o.inlet_temperature_k = 300.15;
    return o;
  }
};

TEST_F(TraceRunnerTest, RecordsOneSamplePerStep) {
  const auto model = make_model();
  const auto trace = ch::full_load_trace(0.5);
  const auto result = th::run_thermal_trace(model, ch::Power7PowerSpec{}, trace, op(), 0.1);
  EXPECT_EQ(result.samples.size(), 5u);
  EXPECT_EQ(result.samples.front().phase, "full-load");
  EXPECT_GT(result.max_peak_temperature_k, 300.15);
}

TEST_F(TraceRunnerTest, TemperatureRisesDuringBurst) {
  const auto model = make_model();
  const auto trace = ch::burst_trace(1);
  const auto result = th::run_thermal_trace(model, ch::Power7PowerSpec{}, trace, op(), 0.1);
  // Find the last idle sample and a late burst sample.
  double idle_peak = 0.0, burst_peak = 0.0;
  for (const auto& s : result.samples) {
    if (s.phase == "idle") {
      idle_peak = s.peak_temperature_k;
    }
    if (s.phase == "burst") {
      burst_peak = s.peak_temperature_k;
    }
  }
  EXPECT_GT(burst_peak, idle_peak + 1.0);
}

TEST_F(TraceRunnerTest, FinalStateSeedsFollowUpRun) {
  const auto model = make_model();
  const auto warmup = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                            ch::full_load_trace(0.5), op(), 0.1);
  const auto cont = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                          ch::full_load_trace(0.2), op(), 0.1,
                                          &warmup.final_state);
  // Continuation starts hot: its first sample exceeds a cold first sample.
  const auto cold = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                          ch::full_load_trace(0.2), op(), 0.1);
  EXPECT_GT(cont.samples.front().peak_temperature_k,
            cold.samples.front().peak_temperature_k + 1.0);
}

TEST_F(TraceRunnerTest, PowerFollowsPhases) {
  const auto model = make_model();
  const auto trace = ch::memory_bound_trace(0.3);
  const auto result = th::run_thermal_trace(model, ch::Power7PowerSpec{}, trace, op(), 0.1);
  const auto full = ch::make_power7_floorplan();
  for (const auto& s : result.samples) {
    EXPECT_LT(s.total_power_w, full.total_power());
  }
}

}  // namespace
