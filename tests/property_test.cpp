// Cross-module property suites: physical invariants checked over swept
// parameter grids (TEST_P), complementing the per-module unit tests.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "chip/power_map.h"
#include "electrochem/butler_volmer.h"
#include "electrochem/reservoir.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "flowcell/colaminar_fvm.h"
#include "flowcell/wall_closure.h"
#include "hydraulics/duct.h"
#include "numerics/linear_solvers.h"
#include "numerics/sparse_matrix.h"
#include "pdn/power_grid.h"
#include "thermal/model.h"

namespace ec = brightsi::electrochem;
namespace fc = brightsi::flowcell;
namespace hy = brightsi::hydraulics;
namespace th = brightsi::thermal;
namespace pd = brightsi::pdn;
namespace ch = brightsi::chip;
namespace nu = brightsi::numerics;

namespace {

// ----------------------------------------------- Butler-Volmer x temperature
class BvTemperatureSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};  // (alpha, T)

TEST_P(BvTemperatureSweep, InversionRoundTripsAcrossKinetics) {
  const auto [alpha, temperature] = GetParam();
  ec::ButlerVolmerState state;
  state.exchange_current_density_a_per_m2 = 85.0;
  state.anodic_transfer_coefficient = alpha;
  state.temperature_k = temperature;
  state.reduced_surface_ratio = 0.8;
  state.oxidized_surface_ratio = 1.1;
  for (const double i : {-2000.0, -20.0, 0.5, 50.0, 4000.0}) {
    const double eta = ec::overpotential_for_current(state, i);
    EXPECT_NEAR(ec::butler_volmer_current(state, eta), i, 1e-6 * std::abs(i))
        << "alpha=" << alpha << " T=" << temperature << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BvTemperatureSweep,
                         ::testing::Combine(::testing::Values(0.3, 0.5, 0.65),
                                            ::testing::Values(280.0, 300.0, 340.0)));

// ------------------------------------------------------- wall closure sweep
class ClosureVoltageSweep : public ::testing::TestWithParam<double> {};  // temperature

TEST_P(ClosureVoltageSweep, CurrentMonotoneAndSelfConsistent) {
  const double temperature = GetParam();
  fc::ClosureParameters p;
  p.temperature_k = temperature;
  p.anode_exchange_current_a_per_m2 = 400.0;
  p.cathode_exchange_current_a_per_m2 = 90.0;
  p.anode_standard_potential_v = -0.255;
  p.cathode_standard_potential_v = 0.991;
  p.anode_wall_mass_transfer_m_per_s = 8e-5;
  p.cathode_wall_mass_transfer_m_per_s = 8e-5;
  p.area_specific_resistance_ohm_m2 = 8e-5;
  const fc::WallConcentrations wall{900.0, 100.0, 950.0, 50.0};

  double previous = -1e9;
  for (double v = 1.4; v >= 0.2; v -= 0.1) {
    const auto r = fc::solve_wall_current(p, wall, v);
    EXPECT_GE(r.total_current_density, previous - 1e-9) << "V=" << v;
    previous = r.total_current_density;
    if (!r.clamped && r.total_current_density > 0.0) {
      // Reconstruct the voltage from the reported decomposition:
      // V = OCV(wall) + eta_cat - eta_an - i*ASR, with the Nernst surface
      // shift inside the overpotentials via the surface ratios.
      const double v_rebuilt = r.local_open_circuit_v + r.cathode_overpotential_v -
                               r.anode_overpotential_v -
                               r.total_current_density * p.area_specific_resistance_ohm_m2;
      EXPECT_NEAR(v_rebuilt, v, 1e-5) << "decomposition at V=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, ClosureVoltageSweep,
                         ::testing::Values(290.0, 300.0, 320.0, 345.0));

// ------------------------------------------------------------ duct geometry
class DuctAspectSweep : public ::testing::TestWithParam<double> {};  // aspect ratio

TEST_P(DuctAspectSweep, CorrelationsBehaveAcrossAspect) {
  const double aspect = GetParam();
  const hy::RectangularDuct duct(1e-3 * aspect, 1e-3, 0.1);
  // f*Re between the square (14.23) and parallel-plate (24) limits.
  EXPECT_GE(duct.friction_factor_reynolds(), 14.2);
  EXPECT_LE(duct.friction_factor_reynolds(), 24.0);
  // Nu between the square (3.608) and plate (8.235) limits.
  EXPECT_GE(duct.nusselt_h1(), 3.6);
  EXPECT_LE(duct.nusselt_h1(), 8.235);
  // Depth-averaged profile integrates to one.
  const hy::DuctVelocityProfile profile(duct);
  const int n = 200;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    mean += profile.depth_averaged((i + 0.5) * duct.width() / n);
  }
  EXPECT_NEAR(mean / n, 1.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Aspects, DuctAspectSweep,
                         ::testing::Values(0.05, 0.125, 0.25, 0.5, 0.75, 1.0));

// ------------------------------------------------------- thermal linearity
class ThermalLinearity : public ::testing::Test {
 protected:
  static th::ThermalModel make_model() {
    th::ThermalModel::GridSettings grid;
    grid.axial_cells = 8;
    return th::ThermalModel(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                            ch::kPower7DieHeightM, grid);
  }
  static th::OperatingPoint op() {
    th::OperatingPoint o;
    o.total_flow_m3_per_s = 676e-6 / 60.0;
    o.inlet_temperature_k = 300.15;
    return o;
  }
};

TEST_F(ThermalLinearity, SuperpositionOfPowerMaps) {
  // The steady operator is linear: the rise of (cores+caches) equals the
  // sum of the separate rises.
  const auto model = make_model();
  ch::Power7PowerSpec cores_only;
  cores_only.cache_w_per_cm2 = 0.0;
  cores_only.logic_w_per_cm2 = 0.0;
  cores_only.io_w_per_cm2 = 0.0;
  cores_only.background_w_per_cm2 = 0.0;
  ch::Power7PowerSpec caches_only;
  caches_only.core_w_per_cm2 = 0.0;
  caches_only.logic_w_per_cm2 = 0.0;
  caches_only.io_w_per_cm2 = 0.0;
  caches_only.background_w_per_cm2 = 0.0;
  ch::Power7PowerSpec both = cores_only;
  both.cache_w_per_cm2 = ch::Power7PowerSpec{}.cache_w_per_cm2;

  const auto sol_cores = model.solve_steady(ch::make_power7_floorplan(cores_only), op());
  const auto sol_caches = model.solve_steady(ch::make_power7_floorplan(caches_only), op());
  const auto sol_both = model.solve_steady(ch::make_power7_floorplan(both), op());

  const double inlet = op().inlet_temperature_k;
  // Compare at a fixed probe cell (center of core0, source plane).
  const int ix = 10, iy = 5, iz = 0;
  const double rise_sum = (sol_cores.temperature_k(ix, iy, iz) - inlet) +
                          (sol_caches.temperature_k(ix, iy, iz) - inlet);
  const double rise_both = sol_both.temperature_k(ix, iy, iz) - inlet;
  EXPECT_NEAR(rise_both, rise_sum, 1e-6 + 1e-6 * std::abs(rise_sum));
}

TEST_F(ThermalLinearity, OutletRiseInverselyProportionalToFlow) {
  const auto model = make_model();
  const auto fp = ch::make_power7_floorplan();
  auto o1 = op();
  auto o2 = op();
  o2.total_flow_m3_per_s *= 2.0;
  const auto s1 = model.solve_steady(fp, o1);
  const auto s2 = model.solve_steady(fp, o2);
  const double rise1 = s1.fluid_heat_absorbed_w /
                       (4.187e6 * o1.total_flow_m3_per_s);  // caloric identity
  const double rise2 = s2.fluid_heat_absorbed_w / (4.187e6 * o2.total_flow_m3_per_s);
  EXPECT_NEAR(rise1 / rise2, 2.0, 1e-6);  // same heat, twice the flow
}

// ---------------------------------------------------------- PDN superposition
TEST(PdnProperty, DroopScalesLinearlyWithLoad) {
  ch::Power7PowerSpec half_spec;
  half_spec.cache_w_per_cm2 /= 2.0;
  const auto fp_full = ch::make_power7_floorplan();
  const auto fp_half = ch::make_power7_floorplan(half_spec);
  const pd::PowerGrid grid_full(pd::PowerGridSpec{}, fp_full);
  const pd::PowerGrid grid_half(pd::PowerGridSpec{}, fp_half);
  const auto taps =
      pd::make_vrm_grid(4, 4, fp_full.die_width(), fp_full.die_height(), 1.0, 25e-3);
  const auto sol_full = grid_full.solve(taps);
  const auto sol_half = grid_half.solve(taps);
  const double drop_full = 1.0 - sol_full.min_voltage_v;
  const double drop_half = 1.0 - sol_half.min_voltage_v;
  EXPECT_NEAR(drop_full / drop_half, 2.0, 1e-6);
}

TEST(PdnProperty, SetPointShiftsRigidly) {
  const auto fp = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, fp);
  const auto taps_1v = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 1.0, 25e-3);
  const auto taps_09 = pd::make_vrm_grid(4, 4, fp.die_width(), fp.die_height(), 0.9, 25e-3);
  const auto sol_1v = grid.solve(taps_1v);
  const auto sol_09 = grid.solve(taps_09);
  // Same constant-current loads: the whole field shifts by 0.1 V.
  EXPECT_NEAR(sol_1v.min_voltage_v - sol_09.min_voltage_v, 0.1, 1e-9);
  EXPECT_NEAR(sol_1v.max_voltage_v - sol_09.max_voltage_v, 0.1, 1e-9);
}

// --------------------------------------------------------- flow cell trends
class ArrayFlowSweep : public ::testing::TestWithParam<double> {};  // voltage

TEST_P(ArrayFlowSweep, MoreFlowNeverLosesCurrent) {
  const double v = GetParam();
  auto spec = fc::power7_array_spec();
  const ec::FlowCellChemistry chem = ec::power7_array_chemistry();
  double previous = -1.0;
  for (const double ml : {100.0, 300.0, 676.0, 1500.0}) {
    spec.total_flow_m3_per_s = ml * 1e-6 / 60.0;
    const fc::FlowCellArray array(spec, chem);
    const double current = array.current_at_voltage(v);
    EXPECT_GE(current, previous - 0.02) << "flow " << ml << " at " << v << " V";
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, ArrayFlowSweep, ::testing::Values(1.2, 1.0, 0.7, 0.4));

class ArrayTemperatureSweep : public ::testing::TestWithParam<double> {};  // voltage

TEST_P(ArrayTemperatureSweep, HotterProfilesMonotonicallyHelp) {
  const double v = GetParam();
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  double previous = -1.0;
  for (const double t : {300.0, 310.0, 320.0, 335.0}) {
    const double current = array.current_at_voltage(v, {t});
    EXPECT_GT(current, previous) << "T=" << t << " V=" << v;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, ArrayTemperatureSweep, ::testing::Values(1.2, 1.0, 0.6));

// ----------------------------------------------------------- reservoir math
TEST(ReservoirProperty, EnergyIsAdditiveOverSocSpans) {
  ec::ReservoirSpec spec;
  spec.chemistry = ec::power7_array_chemistry();
  const ec::ElectrolyteReservoir high(spec, 0.9);
  const ec::ElectrolyteReservoir mid(spec, 0.5);
  const double whole = high.ideal_energy_to_floor_j(0.1, 300.0, 256);
  const double upper = high.ideal_energy_to_floor_j(0.5, 300.0, 256);
  const double lower = mid.ideal_energy_to_floor_j(0.1, 300.0, 256);
  EXPECT_NEAR(whole, upper + lower, whole * 1e-6);
}

TEST(ReservoirProperty, RuntimeScalesWithTankVolume) {
  ec::ReservoirSpec small;
  small.chemistry = ec::power7_array_chemistry();
  small.tank_volume_m3 = 1e-3;
  ec::ReservoirSpec big = small;
  big.tank_volume_m3 = 4e-3;
  const ec::ElectrolyteReservoir r_small(small, 0.9);
  const ec::ElectrolyteReservoir r_big(big, 0.9);
  EXPECT_NEAR(r_big.runtime_to_floor_s(5.0, 0.1) / r_small.runtime_to_floor_s(5.0, 0.1),
              4.0, 1e-9);
}

// --------------------------------------- sparse refill / ILU(0) refactor
// The PR's assemble-once fast paths must be *bitwise* equivalent to a
// from-scratch build: refill_from_triplets against from_triplets, and
// Ilu0Preconditioner::refactor against a fresh factorization — over
// randomized sparsity patterns and values.

/// Deterministic 64-bit LCG, so the randomized patterns are identical on
/// every platform (no <random> distribution variance).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 1ULL) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  double uniform(double lo, double hi) {
    constexpr double scale = 1.0 / static_cast<double>(1 << 20);
    return lo + (hi - lo) * static_cast<double>(next() % (1 << 20)) * scale;
  }
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

/// A random diagonally-dominant square pattern: full diagonal, up to 4
/// off-diagonals per row, and some entries stamped twice (the duplicate
/// summation path of finite-volume assembly).
nu::TripletList random_pattern(Lcg& rng, int n) {
  nu::TripletList triplets;
  for (int i = 0; i < n; ++i) {
    double off_sum = 0.0;
    std::vector<int> used;
    const int off_count = rng.uniform_int(0, 4);
    for (int k = 0; k < off_count; ++k) {
      const int j = rng.uniform_int(0, n - 1);
      // Keep off-diagonal columns distinct so no entry is stamped more
      // than twice: beyond two duplicates the summation order of a fresh
      // build is unspecified and bitwise equality would be overclaiming.
      if (j == i || std::find(used.begin(), used.end(), j) != used.end()) {
        continue;
      }
      used.push_back(j);
      const double value = rng.uniform(-1.0, 1.0);
      triplets.add(i, j, value);
      off_sum += std::abs(value);
      if (rng.uniform_int(0, 3) == 0) {  // duplicate stamp of the same entry
        const double extra = rng.uniform(-0.5, 0.5);
        triplets.add(i, j, extra);
        off_sum += std::abs(extra);
      }
    }
    triplets.add(i, i, off_sum + rng.uniform(1.0, 3.0));  // dominance: no zero pivots
  }
  return triplets;
}

/// Same (row, col) stamp sequence, fresh values (duplicates included).
nu::TripletList refreshed_values(Lcg& rng, const nu::TripletList& pattern) {
  nu::TripletList triplets;
  for (const nu::Triplet& t : pattern.entries()) {
    // Keep diagonal dominance for the ILU sweep: diagonal entries stay
    // large, off-diagonals stay small.
    const double value = t.row == t.col ? std::abs(t.value) + rng.uniform(1.0, 2.0)
                                        : rng.uniform(-1.0, 1.0);
    triplets.add(t.row, t.col, value);
  }
  return triplets;
}

class SparseReuseSweep : public ::testing::TestWithParam<int> {};  // seed

TEST_P(SparseReuseSweep, RefillMatchesFreshBuildBitwise) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 10 + 5 * GetParam();
  const nu::TripletList first = random_pattern(rng, n);
  const nu::TripletList second = refreshed_values(rng, first);

  nu::CsrMatrix reused = nu::CsrMatrix::from_triplets(n, n, first);
  const nu::CsrMatrix fresh = nu::CsrMatrix::from_triplets(n, n, second);

  std::vector<int> slot_cache;
  reused.refill_from_triplets(second, &slot_cache);
  EXPECT_EQ(reused.row_offsets(), fresh.row_offsets());
  EXPECT_EQ(reused.column_indices(), fresh.column_indices());
  EXPECT_EQ(reused.values(), fresh.values());  // bitwise, not approximate
  EXPECT_EQ(slot_cache.size(), second.size());

  // The populated slot cache must reproduce the same fill exactly.
  nu::CsrMatrix cached = nu::CsrMatrix::from_triplets(n, n, first);
  cached.refill_from_triplets(second, &slot_cache);
  EXPECT_EQ(cached.values(), fresh.values());
}

TEST_P(SparseReuseSweep, IluRefactorMatchesFreshFactorizationBitwise) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const int n = 10 + 5 * GetParam();
  const nu::TripletList first = random_pattern(rng, n);
  const nu::TripletList second = refreshed_values(rng, first);
  const nu::CsrMatrix a1 = nu::CsrMatrix::from_triplets(n, n, first);
  const nu::CsrMatrix a2 = nu::CsrMatrix::from_triplets(n, n, second);

  nu::Ilu0Preconditioner refactored(a1);
  refactored.refactor(a2);
  const nu::Ilu0Preconditioner fresh(a2);

  // The factorizations are private; equality is observed through apply():
  // identical factors produce bitwise-identical solves for any rhs.
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (double& value : rhs) {
    value = rng.uniform(-10.0, 10.0);
  }
  std::vector<double> z_refactored(static_cast<std::size_t>(n));
  std::vector<double> z_fresh(static_cast<std::size_t>(n));
  refactored.apply(rhs, z_refactored);
  fresh.apply(rhs, z_fresh);
  EXPECT_EQ(z_refactored, z_fresh);
}

TEST(SparseReuse, MismatchedPatternsAreRejected) {
  nu::TripletList tridiag;
  for (int i = 0; i < 6; ++i) {
    tridiag.add(i, i, 4.0);
    if (i > 0) {
      tridiag.add(i, i - 1, -1.0);
      tridiag.add(i - 1, i, -1.0);
    }
  }
  nu::CsrMatrix a = nu::CsrMatrix::from_triplets(6, 6, tridiag);

  nu::TripletList wider = tridiag;
  wider.add(0, 5, 0.25);  // entry outside the pattern
  EXPECT_THROW(a.refill_from_triplets(wider), std::invalid_argument);

  nu::Ilu0Preconditioner ilu(a);
  const nu::CsrMatrix dense_corner = nu::CsrMatrix::from_triplets(6, 6, wider);
  EXPECT_THROW(ilu.refactor(dense_corner), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseReuseSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------- multi-die stack energy balance
// For any valid N-layer stack (1-3 dies, interlayer or top-only cooling,
// randomized layer thicknesses/heights/discretization and flow), the steady
// solve must conserve energy: the sum of per-die injected power equals the
// coolant enthalpy rise plus boundary losses to 1e-6 relative.

class StackEnergyBalanceSweep : public ::testing::TestWithParam<int> {};  // seed

TEST_P(StackEnergyBalanceSweep, RandomizedStacksConserveEnergy) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 77);
  const int dies = rng.uniform_int(1, 3);
  const bool interlayer = rng.uniform_int(0, 1) == 1;
  const int bulk_z = rng.uniform_int(1, 3);

  th::StackSpec stack = th::multi_die_stack(dies, interlayer, bulk_z);
  for (th::StackLayer& layer : stack.layers) {
    if (auto* solid = std::get_if<th::SolidLayerSpec>(&layer)) {
      if (!solid->has_heat_source && solid->name != "cap_si") {
        solid->thickness_m = rng.uniform(300e-6, 800e-6);
      }
    } else {
      std::get<th::MicrochannelLayerSpec>(layer).layer_height_m =
          rng.uniform(200e-6, 800e-6);
    }
  }
  stack.validate();

  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 6;
  const th::ThermalModel model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM, grid);
  EXPECT_EQ(model.die_count(), dies);

  const ch::Floorplan core_die = ch::make_power7_floorplan();
  const ch::Floorplan memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  std::vector<const ch::Floorplan*> floorplans = {&core_die};
  for (int die = 1; die < dies; ++die) {
    floorplans.push_back(&memory_die);
  }

  th::OperatingPoint op;
  op.total_flow_m3_per_s = rng.uniform(200.0, 1352.0) * 1e-6 / 60.0;
  op.inlet_temperature_k = 300.15;
  const th::ThermalSolution sol = model.solve_steady(floorplans, op);

  // Injected power bookkeeping matches the floorplans...
  double injected = 0.0;
  for (const ch::Floorplan* floorplan : floorplans) {
    injected += floorplan->total_power();
  }
  EXPECT_NEAR(sol.total_power_w, injected, injected * 1e-12);
  // ...and leaves through the coolant to 1e-6 relative (adiabatic stack).
  EXPECT_LT(sol.energy_balance_error, 1e-6)
      << "dies=" << dies << " interlayer=" << interlayer << " bulk_z=" << bulk_z;
  // The per-layer heat breakdown sums to the total absorbed heat.
  double per_layer = 0.0;
  for (const th::ChannelLayerSolution& layer : sol.channel_layers) {
    per_layer += layer.heat_absorbed_w;
  }
  EXPECT_NEAR(per_layer, sol.fluid_heat_absorbed_w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackEnergyBalanceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------ power-map invariants
class RasterFilterSweep : public ::testing::TestWithParam<int> {};

TEST_P(RasterFilterSweep, FilteredPlusComplementEqualsBlocks) {
  const int resolution = GetParam();
  const auto fp = ch::make_power7_floorplan();
  const auto caches = ch::rasterize_power_w(
      fp, resolution, resolution, [](const ch::Block& b) { return ch::is_cache(b.type); });
  const auto rest = ch::rasterize_power_w(
      fp, resolution, resolution, [](const ch::Block& b) { return !ch::is_cache(b.type); });
  double total = 0.0;
  for (std::size_t i = 0; i < caches.data().size(); ++i) {
    total += caches.data()[i] + rest.data()[i];
  }
  const double block_power = fp.total_power() -
                             fp.background_power_density() *
                                 (fp.die_area() - fp.covered_area());
  EXPECT_NEAR(total, block_power, block_power * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, RasterFilterSweep, ::testing::Values(7, 32, 101));

}  // namespace
