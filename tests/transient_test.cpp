// Tests of the shared transient engine: phase-boundary-aligned step
// scheduling (full trace coverage — no truncated tails), sample
// decimation, outlet fallbacks, in-place state hand-off equivalence and
// resumable checkpoints.
#include <cmath>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "thermal/stack.h"
#include "thermal/trace_runner.h"
#include "thermal/transient.h"

namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

namespace {

th::ThermalModel make_model(int axial_cells = 8) {
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = axial_cells;
  return th::ThermalModel(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                          ch::kPower7DieHeightM, grid);
}

th::OperatingPoint nominal_op() {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 676e-6 / 60.0;
  op.inlet_temperature_k = 300.15;
  return op;
}

// ------------------------------------------------------------- scheduling

TEST(TransientSchedule, DivisibleDtCoversTraceExactly) {
  // 10.0 / 0.1 is 99.999... in floating point; truncation used to drop the
  // final step. Round-to-nearest must yield exactly 100 steps ending at
  // exactly 10 s.
  const auto trace = ch::full_load_trace(10.0);
  const auto schedule = th::make_transient_schedule(trace, {0.1, true});
  ASSERT_EQ(schedule.size(), 100u);
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, 10.0);
  for (const th::TransientStep& step : schedule) {
    EXPECT_NEAR(step.dt_s(), 0.1, 1e-12);
  }
}

TEST(TransientSchedule, NonDivisibleDtGetsResidualStep) {
  const auto trace = ch::full_load_trace(1.0);
  const auto schedule = th::make_transient_schedule(trace, {0.3, true});
  ASSERT_EQ(schedule.size(), 4u);  // 0.3, 0.3, 0.3, residual 0.1
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, 1.0);
  EXPECT_NEAR(schedule.back().dt_s(), 0.1, 1e-12);
  // The steps tile the duration gaplessly.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule[i].t_begin_s, schedule[i - 1].t_end_s);
  }
}

TEST(TransientSchedule, OversizedDtShrinksToTheTrace) {
  const auto trace = ch::full_load_trace(0.2);
  const auto schedule = th::make_transient_schedule(trace, {1.0, true});
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.front().t_begin_s, 0.0);
  EXPECT_DOUBLE_EQ(schedule.front().t_end_s, 0.2);
}

TEST(TransientSchedule, AlignedStepsNeverStraddlePhaseEdges) {
  // burst_trace phases: 0.6 | 1.2 | 1.2 with dt 0.25 — none divisible.
  const auto trace = ch::burst_trace(2);
  const auto schedule = th::make_transient_schedule(trace, {0.25, true});
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, trace.total_duration_s());
  for (const th::TransientStep& step : schedule) {
    ASSERT_NE(step.phase, nullptr);
    // The phase at both endpoints' interior matches the step's phase: the
    // step lies inside exactly one phase.
    const double eps = 1e-9;
    EXPECT_EQ(&trace.phase_at(step.t_begin_s + eps), step.phase);
    EXPECT_EQ(trace.phase_at(step.t_end_s - eps).name, step.phase->name);
  }
}

TEST(TransientSchedule, UnalignedScheduleStillCoversTheTrace) {
  const auto trace = ch::burst_trace(1);  // 3.0 s total
  const auto schedule = th::make_transient_schedule(trace, {0.25, false});
  ASSERT_EQ(schedule.size(), 12u);
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, 3.0);
  for (const th::TransientStep& step : schedule) {
    ASSERT_NE(step.phase, nullptr);
  }
}

TEST(TransientSchedule, UnalignedSchedulePinsStepCountAndMidpointPhases) {
  // align_phase_boundaries = false: plain dt steps run straight through
  // phase edges; a straddling step belongs to the phase at its midpoint.
  // Phases A (0.5 s) + B (0.7 s) at dt 0.08: 1.2 / 0.08 divides, so 15
  // equal steps; step 6 spans [0.48, 0.56] and its midpoint 0.52 lies in B.
  std::vector<ch::WorkloadPhase> phases(2);
  phases[0] = {"A", 0.5, 1.0, 1.0, 1.0, 1.0};
  phases[1] = {"B", 0.7, 0.2, 0.2, 0.2, 0.2};
  const ch::WorkloadTrace trace(phases);
  const auto schedule = th::make_transient_schedule(trace, {0.08, false});
  ASSERT_EQ(schedule.size(), 15u);
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, 1.2);
  EXPECT_NEAR(schedule[6].t_begin_s, 0.48, 1e-12);
  EXPECT_NEAR(schedule[6].t_end_s, 0.56, 1e-12);
  EXPECT_EQ(schedule[6].phase->name, "B");  // midpoint 0.52 is past the edge
  EXPECT_EQ(schedule[5].phase->name, "A");  // midpoint 0.44 is before it
  // Every step's phase is exactly the trace's phase at the step midpoint.
  for (const th::TransientStep& step : schedule) {
    EXPECT_EQ(step.phase, &trace.phase_at(0.5 * (step.t_begin_s + step.t_end_s)));
  }
}

TEST(TransientSchedule, UnalignedResidualStepStillCoversTheTraceEnd) {
  // dt 0.07 over 1.2 s does not divide: 17 full steps plus one short
  // residual closer that ends exactly on the trace end.
  std::vector<ch::WorkloadPhase> phases(2);
  phases[0] = {"A", 0.5, 1.0, 1.0, 1.0, 1.0};
  phases[1] = {"B", 0.7, 0.2, 0.2, 0.2, 0.2};
  const ch::WorkloadTrace trace(phases);
  const auto schedule = th::make_transient_schedule(trace, {0.07, false});
  ASSERT_EQ(schedule.size(), 18u);
  EXPECT_DOUBLE_EQ(schedule.back().t_end_s, 1.2);
  EXPECT_NEAR(schedule.back().dt_s(), 0.01, 1e-9);
  for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
    EXPECT_NEAR(schedule[i].dt_s(), 0.07, 1e-12);
    EXPECT_DOUBLE_EQ(schedule[i].t_end_s, schedule[i + 1].t_begin_s);
  }
  EXPECT_EQ(schedule.back().phase->name, "B");
}

TEST(TransientSchedule, RejectsBadInputs) {
  const auto trace = ch::full_load_trace(1.0);
  EXPECT_THROW((void)th::make_transient_schedule(trace, {0.0, true}),
               std::invalid_argument);
  EXPECT_THROW((void)th::make_transient_schedule(trace, {-0.1, true}),
               std::invalid_argument);
}

// ------------------------------------------------------------ trace runner

TEST(TraceRunner, FullCoverageWithAwkwardDt) {
  const auto model = make_model();
  // 1.0 s at dt 0.3: the old truncating loop recorded 3 samples ending at
  // 0.9 s; the engine records 4 ending at exactly 1.0 s.
  const auto result = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                            ch::full_load_trace(1.0), nominal_op(), 0.3);
  ASSERT_EQ(result.samples.size(), 4u);
  EXPECT_NEAR(result.samples.back().time_s, 1.0, 1e-9);
  EXPECT_NEAR(result.samples.back().dt_s, 0.1, 1e-12);
}

TEST(TraceRunner, LongDivisibleTraceKeepsItsTail) {
  const auto trace = ch::full_load_trace(10.0);
  const auto schedule = th::make_transient_schedule(trace, {0.1, true});
  EXPECT_EQ(schedule.size(), 100u);
  EXPECT_NEAR(schedule.back().t_end_s, trace.total_duration_s(), 1e-9);
}

TEST(TraceRunner, SolidStackFallsBackToInletOutlet) {
  // A channel-less (conventional air-cooled) stack has no outlet
  // temperatures; the sample must fall back to the inlet temperature, not
  // report 0 K.
  const th::ThermalModel model(th::power7_conventional_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM);
  th::OperatingPoint op;
  op.inlet_temperature_k = 318.15;
  const auto result = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                            ch::full_load_trace(0.2), op, 0.1);
  ASSERT_FALSE(result.samples.empty());
  for (const th::TraceSample& sample : result.samples) {
    EXPECT_DOUBLE_EQ(sample.mean_outlet_k, 318.15);
  }
}

TEST(TraceRunner, SampleDecimationKeepsTheTail) {
  const auto model = make_model();
  const auto all = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                         ch::full_load_trace(1.0), nominal_op(), 0.1);
  const auto thinned = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                             ch::full_load_trace(1.0), nominal_op(), 0.1,
                                             nullptr, 3);
  ASSERT_EQ(all.samples.size(), 10u);
  ASSERT_EQ(thinned.samples.size(), 4u);  // steps 3, 6, 9, plus the final 10th
  EXPECT_NEAR(thinned.samples.back().time_s, 1.0, 1e-9);
  // Decimation only drops records: the stepping (and final state) match.
  EXPECT_DOUBLE_EQ(thinned.max_peak_temperature_k, all.max_peak_temperature_k);
  ASSERT_EQ(thinned.final_state.size(), all.final_state.size());
  EXPECT_EQ(thinned.final_state.data(), all.final_state.data());
}

// --------------------------------------------------------------- engine

TEST(TransientEngine, ResumedRunMatchesSingleRun) {
  const auto model = make_model();
  const auto op = nominal_op();

  const auto whole = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                           ch::full_load_trace(1.0), op, 0.1);
  const auto first = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                           ch::full_load_trace(0.5), op, 0.1);
  const auto second = th::run_thermal_trace(model, ch::Power7PowerSpec{},
                                            ch::full_load_trace(0.5), op, 0.1,
                                            &first.final_state);
  // The split run walks the identical step sequence, so fields agree to
  // solver tolerance.
  ASSERT_EQ(whole.final_state.size(), second.final_state.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < whole.final_state.size(); ++i) {
    worst = std::max(worst,
                     std::abs(whole.final_state.data()[i] - second.final_state.data()[i]));
  }
  EXPECT_LT(worst, 1e-3);
  EXPECT_NEAR(whole.samples.back().peak_temperature_k,
              second.samples.back().peak_temperature_k, 1e-3);
}

TEST(TransientEngine, StatsAccumulateAcrossRuns) {
  const auto model = make_model();
  th::TransientEngineOptions options;
  options.schedule.dt_s = 0.1;
  th::TransientEngine engine(model, nominal_op(), options);
  const ch::Power7PowerSpec spec;
  engine.run(ch::full_load_trace(0.3), spec, nullptr);
  EXPECT_EQ(engine.steps_taken(), 3);
  engine.run(ch::full_load_trace(0.2), spec, nullptr);
  EXPECT_EQ(engine.steps_taken(), 5);
  EXPECT_EQ(engine.thermal_stats().solves, 5);
}

}  // namespace
