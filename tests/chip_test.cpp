// Tests of the chip module: geometry, floorplan invariants, power-map
// rasterization conservation properties and the POWER7+ reconstruction.
#include <random>

#include <gtest/gtest.h>

#include "chip/floorplan.h"
#include "chip/geometry.h"
#include "chip/power7.h"
#include "chip/power_map.h"

namespace ch = brightsi::chip;

namespace {

std::mt19937& rng() {
  static std::mt19937 gen(777);
  return gen;
}

// ---------------------------------------------------------------- geometry
TEST(Geometry, RectBasics) {
  const ch::Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center_x(), 2.5);
  EXPECT_TRUE(r.contains(2.0, 3.0));
  EXPECT_FALSE(r.contains(0.0, 3.0));
}

TEST(Geometry, OverlapIsExclusiveOfSharedEdges) {
  const ch::Rect a{0.0, 0.0, 1.0, 1.0};
  const ch::Rect b{1.0, 0.0, 1.0, 1.0};  // abuts a
  EXPECT_FALSE(a.overlaps(b));
  const ch::Rect c{0.5, 0.5, 1.0, 1.0};
  EXPECT_TRUE(a.overlaps(c));
}

TEST(Geometry, IntersectionArea) {
  const ch::Rect a{0.0, 0.0, 2.0, 2.0};
  const ch::Rect b{1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.intersection_area(b), 1.0);
  const ch::Rect c{5.0, 5.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.intersection_area(c), 0.0);
}

TEST(Geometry, ContainsRectWithTolerance) {
  const ch::Rect die{0.0, 0.0, 26.55e-3, 21.34e-3};
  // A block whose right edge lands on the die edge up to FP rounding.
  const ch::Rect block{25.05e-3, 0.0, 1.5e-3, 21.34e-3};
  EXPECT_TRUE(die.contains_rect(block));
}

TEST(Geometry, UnitHelpers) {
  const ch::Rect r = ch::rect_mm(1.0, 2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(r.x, 1e-3);
  EXPECT_DOUBLE_EQ(r.height, 4e-3);
  EXPECT_DOUBLE_EQ(ch::w_per_cm2(26.7), 26.7e4);
}

// ---------------------------------------------------------------- floorplan
TEST(Floorplan, AddAndFindBlocks) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"a", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 5), 1e4});
  fp.add_block({"b", ch::BlockType::kL2Cache, ch::rect_mm(5, 5, 5, 5), 2e4});
  EXPECT_NE(fp.find("a"), nullptr);
  EXPECT_EQ(fp.find("missing"), nullptr);
  EXPECT_EQ(fp.blocks().size(), 2u);
}

TEST(Floorplan, RejectsOverlapAndEscape) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"a", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 5), 1e4});
  EXPECT_THROW(fp.add_block({"b", ch::BlockType::kCore, ch::rect_mm(4, 4, 2, 2), 1e4}),
               std::invalid_argument);
  EXPECT_THROW(fp.add_block({"c", ch::BlockType::kCore, ch::rect_mm(8, 8, 5, 5), 1e4}),
               std::invalid_argument);
  EXPECT_THROW(fp.add_block({"a", ch::BlockType::kCore, ch::rect_mm(6, 0, 1, 1), 1e4}),
               std::invalid_argument);  // duplicate name
}

TEST(Floorplan, PowerAccounting) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"core", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 10), 1e4});  // 0.5 W
  fp.add_block({"l2", ch::BlockType::kL2Cache, ch::rect_mm(5, 0, 5, 5), 2e4});  // 0.5 W
  fp.set_background_power_density(1e3);  // remaining 25 mm^2 -> 0.025 W
  EXPECT_NEAR(fp.power_of_type(ch::BlockType::kCore), 0.5, 1e-12);
  EXPECT_NEAR(fp.cache_power(), 0.5, 1e-12);
  EXPECT_NEAR(fp.total_power(), 1.025, 1e-12);
  EXPECT_NEAR(fp.cache_area(), 25e-6, 1e-15);
}

TEST(Floorplan, ScaleAndSetDensity) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"core", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 10), 1e4});
  fp.scale_power(ch::BlockType::kCore, 0.5);
  EXPECT_NEAR(fp.power_of_type(ch::BlockType::kCore), 0.25, 1e-12);
  fp.set_power_density("core", 3e4);
  EXPECT_NEAR(fp.power_of_type(ch::BlockType::kCore), 1.5, 1e-12);
  EXPECT_THROW(fp.set_power_density("nope", 1.0), std::invalid_argument);
}

TEST(Floorplan, BlockTypeNames) {
  EXPECT_STREQ(ch::to_string(ch::BlockType::kCore), "core");
  EXPECT_STREQ(ch::to_string(ch::BlockType::kL3Cache), "L3");
  EXPECT_TRUE(ch::is_cache(ch::BlockType::kL2Cache));
  EXPECT_FALSE(ch::is_cache(ch::BlockType::kLogic));
}

// ---------------------------------------------------------------- power map
class RasterConservation : public ::testing::TestWithParam<int> {};

TEST_P(RasterConservation, TotalPowerIsConservedAtAnyResolution) {
  // Property: rasterization conserves total power for random floorplans.
  const int resolution = GetParam();
  std::uniform_real_distribution<double> pos(0.0, 8.0);
  std::uniform_real_distribution<double> size(0.5, 2.0);
  std::uniform_real_distribution<double> density(1e3, 3e4);

  for (int trial = 0; trial < 5; ++trial) {
    ch::Floorplan fp(10e-3, 10e-3);
    int added = 0;
    for (int attempt = 0; attempt < 40 && added < 8; ++attempt) {
      const ch::Rect r = ch::rect_mm(pos(rng()), pos(rng()), size(rng()), size(rng()));
      if (r.right() > 10e-3 || r.top() > 10e-3) {
        continue;
      }
      bool overlaps = false;
      for (const auto& b : fp.blocks()) {
        overlaps = overlaps || b.footprint.overlaps(r);
      }
      if (overlaps) {
        continue;
      }
      fp.add_block({"b" + std::to_string(added), ch::BlockType::kLogic, r, density(rng())});
      ++added;
    }
    fp.set_background_power_density(500.0);

    const auto grid = ch::rasterize_power_w(fp, resolution, resolution);
    double total = 0.0;
    for (const double p : grid.data()) {
      total += p;
    }
    EXPECT_NEAR(total, fp.total_power(), fp.total_power() * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, RasterConservation, ::testing::Values(3, 8, 17, 50));

TEST(PowerMap, FilteredRasterOnlyCountsSelectedBlocks) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"core", ch::BlockType::kCore, ch::rect_mm(0, 0, 5, 10), 1e4});
  fp.add_block({"l2", ch::BlockType::kL2Cache, ch::rect_mm(5, 0, 5, 10), 2e4});
  const auto caches = ch::rasterize_power_w(
      fp, 10, 10, [](const ch::Block& b) { return ch::is_cache(b.type); });
  double total = 0.0;
  for (const double p : caches.data()) {
    total += p;
  }
  EXPECT_NEAR(total, fp.cache_power(), 1e-12);
}

TEST(PowerMap, DensityMapMatchesUniformBlock) {
  ch::Floorplan fp(10e-3, 10e-3);
  fp.add_block({"all", ch::BlockType::kLogic, {0.0, 0.0, 10e-3, 10e-3}, 12345.0});
  const auto density = ch::rasterize_density_w_per_m2(fp, 7, 9);
  for (const double d : density.data()) {
    EXPECT_NEAR(d, 12345.0, 1e-6);
  }
}

TEST(PowerMap, EdgeRasterConservesTotalOnNonUniformGrid) {
  const auto fp = ch::make_power7_floorplan();
  // Irregular x edges emulating the channel/wall pattern.
  std::vector<double> x_edges = {0.0};
  double x = 0.0;
  bool wide = true;
  while (x < fp.die_width() - 1e-9) {
    x = std::min(fp.die_width(), x + (wide ? 300e-6 : 150e-6));
    x_edges.push_back(x);
    wide = !wide;
  }
  std::vector<double> y_edges;
  for (int i = 0; i <= 21; ++i) {
    y_edges.push_back(fp.die_height() * i / 21);
  }
  const auto grid = ch::rasterize_power_w_on_edges(fp, x_edges, y_edges);
  double total = 0.0;
  for (const double p : grid.data()) {
    total += p;
  }
  EXPECT_NEAR(total, fp.total_power(), fp.total_power() * 1e-9);
}

TEST(PowerMap, RejectsBadEdges) {
  const auto fp = ch::make_power7_floorplan();
  const std::vector<double> bad = {0.0, 0.0, 1e-3};
  const std::vector<double> good = {0.0, 1e-3};
  EXPECT_THROW(ch::rasterize_power_w_on_edges(fp, bad, good), std::invalid_argument);
}

// ----------------------------------------------------------------- POWER7+
TEST(Power7, DieDimensionsMatchPaper) {
  const auto fp = ch::make_power7_floorplan();
  EXPECT_DOUBLE_EQ(fp.die_width(), 26.55e-3);
  EXPECT_DOUBLE_EQ(fp.die_height(), 21.34e-3);
  EXPECT_NEAR(fp.die_area(), 5.666e-4, 1e-6);
}

TEST(Power7, HasEightCoresAndCaches) {
  const auto fp = ch::make_power7_floorplan();
  int cores = 0, l2 = 0, l3 = 0;
  for (const auto& b : fp.blocks()) {
    cores += b.type == ch::BlockType::kCore;
    l2 += b.type == ch::BlockType::kL2Cache;
    l3 += b.type == ch::BlockType::kL3Cache;
  }
  EXPECT_EQ(cores, 8);
  EXPECT_EQ(l2, 8);
  EXPECT_EQ(l3, 2);
}

TEST(Power7, CacheRailDrawsPaperCurrent) {
  // Section III-A: the cache rail needs 5 A at 1 V.
  const auto fp = ch::make_power7_floorplan();
  EXPECT_NEAR(ch::cache_rail_current_a(fp, 1.0), 5.0, 0.01);
}

TEST(Power7, PeakDensityIsCoreDensity) {
  const auto fp = ch::make_power7_floorplan();
  double peak = 0.0;
  for (const auto& b : fp.blocks()) {
    peak = std::max(peak, b.power_density_w_per_m2);
  }
  EXPECT_NEAR(peak, ch::w_per_cm2(26.7), 1e-6);
}

TEST(Power7, CacheDensityForRailCurrentInverts) {
  const auto fp = ch::make_power7_floorplan();
  const double density = ch::cache_density_for_rail_current(fp, 5.0, 1.0);
  EXPECT_NEAR(density * fp.cache_area(), 5.0, 1e-9);
}

TEST(Power7, LiteralPaperCacheDensityVariant) {
  ch::Power7PowerSpec spec;
  spec.cache_w_per_cm2 = ch::kPaperNominalCacheDensityWPerCm2;
  const auto fp = ch::make_power7_floorplan(spec);
  // 1 W/cm^2 over ~2.46 cm^2 -> ~2.46 A, well below the paper's 5 A claim
  // (the documented inconsistency).
  EXPECT_NEAR(ch::cache_rail_current_a(fp, 1.0), 2.46, 0.03);
}

TEST(Power7, BlocksCoverMostOfTheDie) {
  const auto fp = ch::make_power7_floorplan();
  EXPECT_GT(fp.covered_area() / fp.die_area(), 0.85);
  EXPECT_LE(fp.covered_area() / fp.die_area(), 1.0);
}

TEST(Power7, ActivityScalingAffectsOnlyCores) {
  ch::Power7PowerSpec spec;
  auto fp = ch::make_power7_floorplan(spec);
  const double cache_before = fp.cache_power();
  const double core_before = fp.power_of_type(ch::BlockType::kCore);
  fp.scale_power(ch::BlockType::kCore, 0.5);
  EXPECT_NEAR(fp.power_of_type(ch::BlockType::kCore), core_before * 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(fp.cache_power(), cache_before);
}

}  // namespace
