// Tests of the evolutionary multi-objective optimizer (opt/nsga2.h) and
// its RBF surrogate pre-screen: the determinism contract (byte-identical
// CSV/JSON across thread counts), kill-and-resume through a --store
// directory, surrogate-on vs surrogate-off agreement on a small
// exhaustively-searchable problem, the 2-D hypervolume measure, and the
// surrogate's training guards.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "opt/nsga2.h"
#include "opt/studies.h"
#include "opt/surrogate.h"
#include "sweep/execution.h"

namespace fs = std::filesystem;
namespace op = brightsi::opt;
namespace sw = brightsi::sweep;

namespace {

std::string opt_csv(const op::OptResult& result) {
  std::stringstream stream;
  op::write_opt_csv(stream, result);
  return stream.str();
}

std::string pareto_csv(const op::OptResult& result) {
  std::stringstream stream;
  op::write_pareto_csv(stream, result);
  return stream.str();
}

std::string opt_json(const op::OptResult& result) {
  std::stringstream stream;
  op::write_opt_json(stream, result);
  return stream.str();
}

/// A fresh, empty directory path under the test temp dir.
std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("brightsi_nsga2_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// The cheap study (rail integrity — no thermal solve) with a Pareto pair:
/// maximize rail_min_v against minimize tap_count.
op::Study rail_study() { return op::make_registered_study("vrm_placement"); }

/// rail_study() coarsened to a 4 x 4 all-integer grid: 16 reachable
/// designs, so a modest budget exhausts the space and the true Pareto
/// front is independent of the search path.
op::Study tiny_integer_study() {
  op::Study study = rail_study();
  study.parameters = {
      {"vrm_grid_n", 1.0, 4.0, true},
      {"vrm_r_mohm", 5.0, 8.0, true},
  };
  return study;
}

std::shared_ptr<sw::ExecutionBackend> store_backend(const op::Study& study,
                                                    const std::string& dir,
                                                    int threads) {
  sw::ShardOptions shard;
  shard.store_dir = dir;
  shard.scope = study.name;
  shard.local = {threads, true};
  return sw::make_shard_backend(std::move(shard));
}

// ------------------------------------------------------------ hypervolume

TEST(Hypervolume, SingleAndStaircase) {
  // One point: the dominated rectangle.
  EXPECT_DOUBLE_EQ(op::hypervolume_2d({{3.0, 1.0}}, 0.0, 4.0), 3.0 * 3.0);
  // A 2-point staircase: rectangles stack without double counting.
  EXPECT_DOUBLE_EQ(op::hypervolume_2d({{3.0, 2.0}, {1.0, 1.0}}, 0.0, 4.0),
                   3.0 * 2.0 + 1.0 * 1.0);
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(op::hypervolume_2d({{1.0, 1.0}, {3.0, 2.0}}, 0.0, 4.0),
                   op::hypervolume_2d({{3.0, 2.0}, {1.0, 1.0}}, 0.0, 4.0));
}

TEST(Hypervolume, DominatedAndOutOfReferencePointsContributeNothing) {
  const double base = op::hypervolume_2d({{3.0, 1.0}}, 0.0, 4.0);
  // (2, 2) is dominated by (3, 1); (-1, 3) and (2, 5) are not strictly
  // inside the reference corner.
  EXPECT_DOUBLE_EQ(
      op::hypervolume_2d({{3.0, 1.0}, {2.0, 2.0}, {-1.0, 3.0}, {2.0, 5.0}}, 0.0, 4.0),
      base);
  EXPECT_DOUBLE_EQ(op::hypervolume_2d({}, 0.0, 4.0), 0.0);
  // A strictly better front has strictly larger hypervolume.
  EXPECT_GT(op::hypervolume_2d({{3.5, 1.0}}, 0.0, 4.0), base);
}

// -------------------------------------------------------------- surrogate

TEST(Surrogate, InterpolatesAndGuardsDegenerateInputs) {
  op::RbfSurrogate surrogate;
  // Too few points for 2-D (needs dim + 2 = 4).
  EXPECT_FALSE(surrogate.train({{0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}},
                               {{0.0}, {2.0}, {1.0}}));
  EXPECT_FALSE(surrogate.trained());
  // Coincident points: no usable shape parameter.
  EXPECT_FALSE(surrogate.train({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}},
                               {{1.0}, {1.0}, {1.0}, {1.0}}));

  // f(x, y) = x + 2y sampled on the unit square's corners + center: the
  // interpolant must reproduce the training targets closely and rank an
  // unseen point sensibly between its neighbors.
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.5, 0.5}};
  std::vector<std::vector<double>> targets;
  for (const std::vector<double>& p : points) {
    targets.push_back({p[0] + 2.0 * p[1], -p[0]});
  }
  ASSERT_TRUE(surrogate.train(points, targets));
  EXPECT_TRUE(surrogate.trained());
  EXPECT_EQ(surrogate.target_count(), 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::vector<double> y = surrogate.predict(points[i]);
    EXPECT_NEAR(y[0], targets[i][0], 1e-6) << i;
    EXPECT_NEAR(y[1], targets[i][1], 1e-6) << i;
  }
  const std::vector<double> mid = surrogate.predict({0.25, 0.25});
  EXPECT_GT(mid[0], 0.0);
  EXPECT_LT(mid[0], 1.5);
}

// ------------------------------------------------------------- optimizer

TEST(Nsga2, RejectsInvalidOptionsAndStudies) {
  EXPECT_THROW((void)op::optimize_nsga2(rail_study(), {.budget = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)op::optimize_nsga2(rail_study(), {.budget = 8, .population = 3}),
               std::invalid_argument);
  op::Study no_pair = rail_study();
  no_pair.objective.pareto_maximize.clear();
  no_pair.objective.pareto_minimize.clear();
  EXPECT_THROW((void)op::optimize_nsga2(no_pair), std::invalid_argument);
}

TEST(Nsga2, OutputIsByteIdenticalAcrossThreadCounts) {
  op::Nsga2Options serial;
  serial.budget = 24;
  serial.population = 6;
  serial.thread_count = 1;
  op::Nsga2Options parallel = serial;
  parallel.thread_count = 4;

  const op::OptResult a = op::optimize_nsga2(rail_study(), serial);
  const op::OptResult b = op::optimize_nsga2(rail_study(), parallel);
  EXPECT_EQ(a.evaluations(), 24);
  EXPECT_GT(a.generations, 0);
  EXPECT_EQ(a.algo, "nsga2");
  EXPECT_EQ(opt_csv(a), opt_csv(b));
  EXPECT_EQ(pareto_csv(a), pareto_csv(b));
  // The JSON embeds thread-independent fields only — byte-identical too,
  // except the recorded thread count, which we normalize away.
  op::OptResult b_normalized = op::optimize_nsga2(rail_study(), parallel);
  b_normalized.archive.thread_count = a.archive.thread_count;
  EXPECT_EQ(opt_json(a), opt_json(b_normalized));
}

TEST(Nsga2, SeedChangesTheSearchPath) {
  op::Nsga2Options options;
  options.budget = 16;
  options.population = 4;
  options.thread_count = 2;
  const op::OptResult a = op::optimize_nsga2(rail_study(), options);
  options.seed ^= 0x1234;
  const op::OptResult c = op::optimize_nsga2(rail_study(), options);
  EXPECT_NE(opt_csv(a), opt_csv(c));
}

TEST(Nsga2, KillAndResumeThroughStoreReplaysByteIdentically) {
  const op::Study study = rail_study();
  const std::string dir = temp_dir("resume");

  // The reference: one uninterrupted run, no store.
  op::Nsga2Options options;
  options.budget = 24;
  options.population = 6;
  options.thread_count = 2;
  const op::OptResult direct = op::optimize_nsga2(study, options);

  // The "killed" run: same search, budget cut mid-generation (10 is not a
  // population multiple), every evaluated row persisted in the store.
  op::Nsga2Options first = options;
  first.budget = 10;
  first.backend = store_backend(study, dir, 2);
  const op::OptResult partial = op::optimize_nsga2(study, first);
  EXPECT_EQ(partial.evaluations(), 10);

  // The resumed run replays the identical candidate sequence; the first 10
  // evaluations come back as store hits, the rest run fresh.
  op::Nsga2Options second = options;
  second.backend = store_backend(study, dir, 2);
  const op::OptResult resumed = op::optimize_nsga2(study, second);
  EXPECT_EQ(opt_csv(direct), opt_csv(resumed));
  EXPECT_EQ(pareto_csv(direct), pareto_csv(resumed));
  EXPECT_GE(resumed.archive.exec.store_hits, 10);

  // The partial run's archive is a strict prefix of the full one.
  const std::string full_csv = opt_csv(direct);
  const std::string partial_rows = pareto_csv(partial);
  EXPECT_FALSE(partial_rows.empty());
}

TEST(Nsga2, SurrogateScreenAgreesWithExhaustiveSearchOnTinySpace) {
  // 16 reachable integer designs, budget 40: with or without the screen
  // the search exhausts the space, so the true Pareto front — a property
  // of the problem, not the path — must come out identical.
  const op::Study study = tiny_integer_study();
  op::Nsga2Options with;
  with.budget = 40;
  with.population = 4;
  with.thread_count = 2;
  op::Nsga2Options without = with;
  without.surrogate = false;

  const op::OptResult screened = op::optimize_nsga2(study, with);
  const op::OptResult plain = op::optimize_nsga2(study, without);
  EXPECT_GT(screened.surrogate_candidates, 0);
  EXPECT_GT(screened.surrogate_screened, 0);
  EXPECT_EQ(plain.surrogate_candidates, 0);
  EXPECT_EQ(pareto_csv(screened), pareto_csv(plain));
  // Both terminate early once the 16-point space is exhausted.
  EXPECT_LE(screened.evaluations(), 16);
  EXPECT_LE(plain.evaluations(), 16);
}

TEST(Nsga2, FrontDominatesOrMatchesTheGridOptimizerAtEqualBudget) {
  // The acceptance bar on the cheap study: at an equal real-evaluation
  // budget the evolutionary front's hypervolume must be at least the grid
  // optimizer's (its archive also carries a front; nsga2 is built to
  // spread across it rather than converge to one incumbent).
  const op::Study study = rail_study();
  const int budget = 32;
  op::Nsga2Options evo;
  evo.budget = budget;
  evo.population = 8;
  evo.thread_count = 2;
  const op::OptResult moo = op::optimize_nsga2(study, evo);
  const op::OptResult grid = op::optimize(study, {.budget = budget, .thread_count = 2});

  const auto front_points = [](const op::OptResult& result) {
    std::vector<std::pair<double, double>> points;
    for (const int index : result.pareto_indices) {
      const auto& metrics = result.archive.rows[static_cast<std::size_t>(index)].metrics;
      points.emplace_back(metrics[1], metrics[0]);  // (rail_min_v, tap_count)
    }
    return points;
  };
  // Reference corner: worst rail voltage 0, tap count above the 8x8 max.
  const double hv_moo = op::hypervolume_2d(front_points(moo), 0.0, 65.0);
  const double hv_grid = op::hypervolume_2d(front_points(grid), 0.0, 65.0);
  EXPECT_GE(hv_moo, hv_grid);
  EXPECT_GT(hv_moo, 0.0);
}

}  // namespace
