// Tests of the hydraulics module: friction correlation limits, pressure
// drop against analytic cases, exact velocity-profile properties, Nusselt
// table, pump power and manifold splitting.
#include <cmath>

#include <gtest/gtest.h>

#include "hydraulics/dimensionless.h"
#include "hydraulics/duct.h"
#include "hydraulics/manifold.h"
#include "hydraulics/pump.h"

namespace hy = brightsi::hydraulics;

namespace {

// ------------------------------------------------------------------ ducts
TEST(Duct, HydraulicDiameterOfSquare) {
  const hy::RectangularDuct d(1e-3, 1e-3, 0.1);
  EXPECT_NEAR(d.hydraulic_diameter(), 1e-3, 1e-12);
}

TEST(Duct, HydraulicDiameterOfTableIIChannel) {
  const hy::RectangularDuct d(200e-6, 400e-6, 22e-3);
  EXPECT_NEAR(d.hydraulic_diameter(), 4.0 * 8e-8 / 1.2e-3, 1e-12);  // 266.7 um
}

TEST(Duct, FrictionFactorSquareDuct) {
  const hy::RectangularDuct d(1e-3, 1e-3, 0.1);
  EXPECT_NEAR(d.friction_factor_reynolds(), 14.23, 0.05);  // Shah-London
}

TEST(Duct, FrictionFactorParallelPlateLimit) {
  const hy::RectangularDuct d(1e-6, 1.0, 0.1);  // aspect -> 0
  EXPECT_NEAR(d.friction_factor_reynolds(), 24.0, 0.01);
}

TEST(Duct, PressureDropParallelPlatesAnalytic) {
  // dp/L = 12 mu v / h^2 for plates of gap h.
  const double h = 100e-6;
  const hy::RectangularDuct d(h, 10.0, 1.0);  // effectively parallel plates
  const double mu = 1e-3;
  const double v = 0.5;
  EXPECT_NEAR(d.pressure_gradient_pa_per_m(mu, v), 12.0 * mu * v / (h * h), 120.0);
  // (tolerance ~0.02 % of the 6e5 Pa/m value)
}

TEST(Duct, PressureDropScalesLinearlyInVelocityAndLength) {
  const hy::RectangularDuct d(200e-6, 400e-6, 22e-3);
  const double dp1 = d.pressure_drop_pa(2.53e-3, 1.0);
  EXPECT_NEAR(d.pressure_drop_pa(2.53e-3, 2.0), 2.0 * dp1, 1e-9);
  const hy::RectangularDuct d2(200e-6, 400e-6, 44e-3);
  EXPECT_NEAR(d2.pressure_drop_pa(2.53e-3, 1.0), 2.0 * dp1, 1e-9);
}

TEST(Duct, TableIIOperatingPoint) {
  // 676 ml/min over 88 channels of 200x400 um: v = 1.6 m/s, Re ~ 213,
  // laminar; dp ~ 0.39 bar over 22 mm.
  const hy::RectangularDuct d(200e-6, 400e-6, 22e-3);
  const double per_channel = 676e-6 / 60.0 / 88.0;
  const double v = d.mean_velocity(per_channel);
  EXPECT_NEAR(v, 1.60, 0.01);
  EXPECT_NEAR(d.reynolds(1260.0, 2.53e-3, v), 213.0, 2.0);
  EXPECT_NEAR(d.pressure_drop_pa(2.53e-3, v), 3.9e4, 1e3);
}

TEST(Duct, MeanVelocityFromFlow) {
  const hy::RectangularDuct d(1e-3, 2e-3, 0.1);
  EXPECT_DOUBLE_EQ(d.mean_velocity(2e-6), 1.0);
}

TEST(Duct, NusseltTableAnchors) {
  const hy::RectangularDuct square(1e-3, 1e-3, 0.1);
  EXPECT_NEAR(square.nusselt_h1(), 3.608, 1e-6);
  const hy::RectangularDuct half(1e-3, 2e-3, 0.1);
  EXPECT_NEAR(half.nusselt_h1(), 4.123, 1e-6);
  const hy::RectangularDuct plates(1e-6, 1.0, 0.1);
  EXPECT_NEAR(plates.nusselt_h1(), 8.235, 1e-2);
}

TEST(Duct, HydraulicConductanceMatchesPressureDrop) {
  const hy::RectangularDuct d(200e-6, 400e-6, 22e-3);
  const double mu = 2.53e-3;
  const double q = 1e-7;
  const double dp = d.pressure_drop_pa(mu, d.mean_velocity(q));
  EXPECT_NEAR(d.hydraulic_conductance(mu) * dp, q, q * 1e-9);
}

TEST(Duct, RejectsNonPositiveGeometry) {
  EXPECT_THROW(hy::RectangularDuct(0.0, 1e-3, 0.1), std::invalid_argument);
  EXPECT_THROW(hy::RectangularDuct(1e-3, -1e-3, 0.1), std::invalid_argument);
  EXPECT_THROW(hy::RectangularDuct(1e-3, 1e-3, 0.0), std::invalid_argument);
}

// -------------------------------------------------------- velocity profile
TEST(VelocityProfile, VanishesAtWallsAndPeaksAtCenter) {
  const hy::RectangularDuct d(2e-3, 150e-6, 33e-3);
  const hy::DuctVelocityProfile profile(d);
  EXPECT_NEAR(profile.normalized_at(0.0, 75e-6), 0.0, 1e-6);
  EXPECT_NEAR(profile.normalized_at(2e-3, 75e-6), 0.0, 1e-6);
  EXPECT_NEAR(profile.normalized_at(1e-3, 0.0), 0.0, 1e-6);
  EXPECT_GT(profile.normalized_at(1e-3, 75e-6), 1.0);
}

TEST(VelocityProfile, DepthAveragedMeanIsOne) {
  const hy::RectangularDuct d(200e-6, 400e-6, 22e-3);
  const hy::DuctVelocityProfile profile(d);
  const int n = 400;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    const double y = (i + 0.5) * 200e-6 / n;
    mean += profile.depth_averaged(y);
  }
  mean /= n;
  EXPECT_NEAR(mean, 1.0, 1e-3);
}

TEST(VelocityProfile, SquareDuctPeakToMeanRatio) {
  // Exact value for a square duct: u_max / u_mean = 2.0962.
  const hy::RectangularDuct d(1e-3, 1e-3, 0.1);
  const hy::DuctVelocityProfile profile(d, 101);
  EXPECT_NEAR(profile.normalized_at(0.5e-3, 0.5e-3), 2.0962, 5e-3);
}

TEST(VelocityProfile, NearParabolicAcrossNarrowGap) {
  // For a duct much taller than wide, the depth-averaged profile across
  // the gap approaches the parabola 1.5 (1 - (2y/W - 1)^2).
  const hy::RectangularDuct d(200e-6, 4000e-6, 22e-3);
  const hy::DuctVelocityProfile profile(d);
  const double center = profile.depth_averaged(100e-6);
  EXPECT_NEAR(center, 1.5, 0.03);
  const double quarter = profile.depth_averaged(50e-6);
  EXPECT_NEAR(quarter, 1.5 * 0.75, 0.04);
}

TEST(VelocityProfile, SymmetricAboutCenterline) {
  const hy::RectangularDuct d(2e-3, 150e-6, 33e-3);
  const hy::DuctVelocityProfile profile(d);
  for (const double y : {0.2e-3, 0.5e-3, 0.9e-3}) {
    EXPECT_NEAR(profile.depth_averaged(y), profile.depth_averaged(2e-3 - y), 1e-9);
  }
}

TEST(VelocityProfile, RejectsOutOfDuctQueries) {
  const hy::RectangularDuct d(1e-3, 1e-3, 0.1);
  const hy::DuctVelocityProfile profile(d);
  EXPECT_THROW((void)profile.depth_averaged(-1e-6), std::invalid_argument);
  EXPECT_THROW((void)profile.depth_averaged(1.1e-3), std::invalid_argument);
  EXPECT_THROW((void)profile.normalized_at(0.5e-3, 2e-3), std::invalid_argument);
}

// -------------------------------------------------------------------- pump
TEST(Pump, PaperPumpingEquation) {
  // P = dp * V / eta (Section III-B). With the paper's numbers
  // (dp = 1.95e5 Pa implied by their 4.4 W at 676 ml/min, eta = 0.5).
  const double flow = 676e-6 / 60.0;
  EXPECT_NEAR(hy::pumping_power_w(1.95e5, flow, 0.5), 4.4, 0.01);
}

TEST(Pump, EfficiencyScaling) {
  EXPECT_DOUBLE_EQ(hy::pumping_power_w(1e5, 1e-5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(hy::pumping_power_w(1e5, 1e-5, 0.5), 2.0);
}

TEST(Pump, RejectsBadEfficiency) {
  EXPECT_THROW((void)hy::pumping_power_w(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)hy::pumping_power_w(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(Pump, MinorLossQuadraticInVelocity) {
  const double k = 1.5;
  EXPECT_NEAR(hy::minor_loss_pa(k, 1260.0, 2.0) / hy::minor_loss_pa(k, 1260.0, 1.0), 4.0,
              1e-12);
}

// ----------------------------------------------------------- dimensionless
TEST(Dimensionless, ReynoldsDefinition) {
  EXPECT_DOUBLE_EQ(hy::reynolds_number(1000.0, 1.0, 1e-3, 1e-3), 1000.0);
}

TEST(Dimensionless, SchmidtAndPecletConsistency) {
  const double re = hy::reynolds_number(1260.0, 1.6, 2.667e-4, 2.53e-3);
  const double sc = hy::schmidt_number(2.53e-3, 1260.0, 1.26e-10);
  const double pe = hy::peclet_mass(1.6, 2.667e-4, 1.26e-10);
  EXPECT_NEAR(re * sc, pe, pe * 1e-9);
}

TEST(Dimensionless, FilmThicknessSqrtGrowth) {
  const double d1 = hy::film_boundary_layer_thickness(1e-10, 0.01, 1.0);
  const double d2 = hy::film_boundary_layer_thickness(1e-10, 0.04, 1.0);
  EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(Dimensionless, EntranceLength) {
  EXPECT_NEAR(hy::hydrodynamic_entrance_length(213.0, 2.667e-4), 2.84e-3, 1e-4);
}

// ----------------------------------------------------------------- manifold
TEST(Manifold, UniformSplitConservesFlow) {
  const auto split = hy::split_uniform(88e-6, 88);
  EXPECT_EQ(split.size(), 88u);
  double total = 0.0;
  for (const double q : split) {
    EXPECT_DOUBLE_EQ(q, 1e-6);
    total += q;
  }
  EXPECT_NEAR(total, 88e-6, 1e-15);
}

TEST(Manifold, IdenticalChannelsSplitEqually) {
  std::vector<hy::RectangularDuct> ducts;
  for (int i = 0; i < 4; ++i) {
    ducts.emplace_back(200e-6, 400e-6, 22e-3);
  }
  const auto split = hy::split_by_conductance(4e-6, ducts, 2.53e-3);
  for (const double q : split.per_channel_flow_m3_per_s) {
    EXPECT_NEAR(q, 1e-6, 1e-15);
  }
}

TEST(Manifold, WiderChannelTakesMoreFlow) {
  std::vector<hy::RectangularDuct> ducts = {
      hy::RectangularDuct(200e-6, 400e-6, 22e-3),
      hy::RectangularDuct(400e-6, 400e-6, 22e-3),
  };
  const auto split = hy::split_by_conductance(2e-6, ducts, 2.53e-3);
  EXPECT_GT(split.per_channel_flow_m3_per_s[1], split.per_channel_flow_m3_per_s[0]);
  EXPECT_NEAR(split.per_channel_flow_m3_per_s[0] + split.per_channel_flow_m3_per_s[1], 2e-6,
              1e-15);
}

TEST(Manifold, CommonPressureDropIsConsistent) {
  std::vector<hy::RectangularDuct> ducts = {
      hy::RectangularDuct(200e-6, 400e-6, 22e-3),
      hy::RectangularDuct(300e-6, 400e-6, 22e-3),
  };
  const double mu = 2.53e-3;
  const auto split = hy::split_by_conductance(2e-6, ducts, mu);
  for (std::size_t i = 0; i < ducts.size(); ++i) {
    const double v = ducts[i].mean_velocity(split.per_channel_flow_m3_per_s[i]);
    EXPECT_NEAR(ducts[i].pressure_drop_pa(mu, v), split.common_pressure_drop_pa,
                split.common_pressure_drop_pa * 1e-9);
  }
}

TEST(Manifold, EmptyChannelListThrows) {
  const std::vector<hy::RectangularDuct> none;
  EXPECT_THROW(hy::split_by_conductance(1e-6, none, 1e-3), std::invalid_argument);
}

// ------------------------------------------------- equal-pressure groups
TEST(SplitEqualPressure, BlockedGroupTakesExactlyZeroFlow) {
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  const std::vector<hy::ParallelChannelGroup> groups = {
      {duct, 44, "live"},
      {duct, 0, "blocked"},  // valve closed: zero channels
  };
  const auto split = hy::split_equal_pressure(88e-6, groups, 2.53e-3);
  EXPECT_DOUBLE_EQ(split.per_group_flow_m3_per_s[0], 88e-6);
  EXPECT_DOUBLE_EQ(split.per_group_flow_m3_per_s[1], 0.0);
  EXPECT_DOUBLE_EQ(split.fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(split.fraction[1], 0.0);
  EXPECT_GT(split.common_pressure_drop_pa, 0.0);
}

TEST(SplitEqualPressure, BlockedGroupDoesNotPerturbLiveSplit) {
  // The survivors' split with a blocked group present must be bit-identical
  // to the same split without it — a zero conductance adds exactly +0.0 to
  // the Brent bracket arithmetic.
  const hy::RectangularDuct narrow(200e-6, 400e-6, 22e-3);
  const hy::RectangularDuct wide(400e-6, 400e-6, 22e-3);
  const std::vector<hy::ParallelChannelGroup> live = {{narrow, 44, "a"}, {wide, 44, "b"}};
  const std::vector<hy::ParallelChannelGroup> with_blocked = {
      {narrow, 44, "a"}, {wide, 44, "b"}, {narrow, 0, "stuck"}};
  const auto base = hy::split_equal_pressure(88e-6, live, 2.53e-3);
  const auto hardened = hy::split_equal_pressure(88e-6, with_blocked, 2.53e-3);
  EXPECT_EQ(base.per_group_flow_m3_per_s[0], hardened.per_group_flow_m3_per_s[0]);
  EXPECT_EQ(base.per_group_flow_m3_per_s[1], hardened.per_group_flow_m3_per_s[1]);
  EXPECT_EQ(base.common_pressure_drop_pa, hardened.common_pressure_drop_pa);
  EXPECT_DOUBLE_EQ(hardened.per_group_flow_m3_per_s[2], 0.0);
}

TEST(SplitEqualPressure, AllBlockedThrowsNamedError) {
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  const std::vector<hy::ParallelChannelGroup> groups = {{duct, 0, "north"},
                                                        {duct, 0, "south"}};
  try {
    (void)hy::split_equal_pressure(88e-6, groups, 2.53e-3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("zero total conductance"), std::string::npos) << what;
    EXPECT_NE(what.find("north"), std::string::npos) << what;
    EXPECT_NE(what.find("south"), std::string::npos) << what;
  }
}

TEST(SplitEqualPressure, NegativeChannelCountThrows) {
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  const std::vector<hy::ParallelChannelGroup> groups = {{duct, -1, "bad"}};
  EXPECT_THROW((void)hy::split_equal_pressure(1e-6, groups, 2.53e-3),
               std::invalid_argument);
}

// ------------------------------------------------ rack parallel branches
TEST(SplitEqualPressure, BranchConductanceSumsItsGroups) {
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  hy::ParallelBranch branch;
  branch.name = "chip0";
  branch.groups = {{duct, 44, "bottom"}, {duct, 44, "top"}};
  const double mu = 2.53e-3;
  EXPECT_NEAR(branch.conductance(mu), 88.0 * duct.hydraulic_conductance(mu),
              1e-9 * branch.conductance(mu));
}

TEST(SplitEqualPressure, BlockedBranchFlowGoesToSurvivors) {
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  hy::ParallelBranch live1{"chip0", {{duct, 88, "cool"}}};
  hy::ParallelBranch live2{"chip1", {{duct, 88, "cool"}}};
  hy::ParallelBranch blocked{"chip2", {}};  // no groups at all: valve closed
  const std::vector<hy::ParallelBranch> branches = {live1, blocked, live2};
  const double total = 3e-6;
  const auto split = hy::split_equal_pressure(total, branches, 2.53e-3);
  EXPECT_NEAR(split.per_group_flow_m3_per_s[0], total / 2.0, total * 1e-12);
  EXPECT_DOUBLE_EQ(split.per_group_flow_m3_per_s[1], 0.0);
  EXPECT_NEAR(split.per_group_flow_m3_per_s[2], total / 2.0, total * 1e-12);
  EXPECT_NEAR(split.fraction[0] + split.fraction[1] + split.fraction[2], 1.0, 1e-12);
}

TEST(SplitEqualPressure, AllBlockedBranchesThrowNamedError) {
  const std::vector<hy::ParallelBranch> branches = {{"chip0", {}}, {"chip1", {}}};
  try {
    (void)hy::split_equal_pressure(1e-6, branches, 2.53e-3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chip0"), std::string::npos) << what;
    EXPECT_NE(what.find("chip1"), std::string::npos) << what;
  }
}

TEST(SplitEqualPressure, HeterogeneousBranchesFollowConductance) {
  // A branch with twice the channels takes twice the flow — the linear
  // laminar law makes the equal-dp split proportional to conductance.
  const hy::RectangularDuct duct(200e-6, 400e-6, 22e-3);
  hy::ParallelBranch single{"one-die", {{duct, 88, "cool"}}};
  hy::ParallelBranch stacked{"two-die", {{duct, 88, "lower"}, {duct, 88, "upper"}}};
  const std::vector<hy::ParallelBranch> branches = {single, stacked};
  const auto split = hy::split_equal_pressure(3e-6, branches, 2.53e-3);
  EXPECT_NEAR(split.fraction[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(split.fraction[1], 2.0 / 3.0, 1e-9);
}

}  // namespace
