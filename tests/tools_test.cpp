// Unit tests of tools/cli_args.h — the tiny argv helpers shared by the
// brightsi_sweep and brightsi_opt drivers. The CLIs' negative-path ctest
// entries exercise the binaries end to end; these tests pin the helper
// semantics (missing values, integer parsing, minimums, duplicate-flag
// last-wins, unknown-flag error text) at the unit level.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../tools/cli_args.h"

namespace to = brightsi::tools;

namespace {

/// Builds a mutable argv from string literals (the helpers take char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& arg : storage_) {
      pointers_.push_back(arg.data());
    }
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers_.size()); }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

/// Runs `fn` and returns the std::invalid_argument message it throws;
/// fails the test when it does not throw.
template <typename Fn>
std::string invalid_argument_message(const Fn& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

TEST(CliArgs, NextArgReturnsValueAndAdvances) {
  Argv args({"prog", "--csv", "out.csv", "--quiet"});
  int i = 1;
  EXPECT_EQ(to::next_arg(args.argc(), args.argv(), i, "--csv"), "out.csv");
  EXPECT_EQ(i, 2);  // consumed the value slot
}

TEST(CliArgs, NextArgMissingValueNamesTheFlag) {
  Argv args({"prog", "--csv"});
  int i = 1;
  const std::string message = invalid_argument_message(
      [&] { (void)to::next_arg(args.argc(), args.argv(), i, "--csv"); });
  EXPECT_EQ(message, "missing value after --csv");
}

TEST(CliArgs, NextIntArgParsesAndEnforcesMinimum) {
  Argv args({"prog", "--threads", "4", "--budget", "0"});
  int i = 1;
  EXPECT_EQ(to::next_int_arg(args.argc(), args.argv(), i, "--threads", 0), 4);
  ++i;  // step over "--budget" the way the CLI loops do
  const std::string message = invalid_argument_message(
      [&] { (void)to::next_int_arg(args.argc(), args.argv(), i, "--budget", 1); });
  EXPECT_EQ(message, "--budget must be >= 1");
}

TEST(CliArgs, NextIntArgRejectsGarbageAndTrailingText) {
  for (const std::string& bad : {"zero", "4x", "", "7.5"}) {
    Argv args({"prog", "--threads", bad});
    int i = 1;
    const std::string message = invalid_argument_message(
        [&] { (void)to::next_int_arg(args.argc(), args.argv(), i, "--threads", 0); });
    EXPECT_EQ(message, "not an integer after --threads: '" + bad + "'") << bad;
  }
}

TEST(CliArgs, DuplicateFlagsLastWins) {
  // Both CLIs loop over argv and overwrite on every occurrence, so a
  // repeated flag takes its last value. Pin that contract here.
  Argv args({"prog", "--threads", "2", "--threads", "8"});
  int threads = 0;
  for (int i = 1; i < args.argc(); ++i) {
    if (std::string(args.argv()[i]) == "--threads") {
      threads = to::next_int_arg(args.argc(), args.argv(), i, "--threads", 0);
    }
  }
  EXPECT_EQ(threads, 8);
}

TEST(CliArgs, NextChoiceArgAcceptsListedValuesAndAdvances) {
  Argv args({"prog", "--solver", "mg", "--transient", "rom"});
  int i = 1;
  EXPECT_EQ(to::next_choice_arg(args.argc(), args.argv(), i, "--solver", {"ilu0", "mg"}),
            "mg");
  EXPECT_EQ(i, 2);  // consumed the value slot
  i = 3;
  EXPECT_EQ(to::next_choice_arg(args.argc(), args.argv(), i, "--transient", {"full", "rom"}),
            "rom");
}

TEST(CliArgs, NextChoiceArgRejectsUnlistedValueListingTheVocabulary) {
  // CI pins this exact text (with the full vocabulary) on both drivers via
  // PASS_REGULAR_EXPRESSION; the helper is the single source of it.
  Argv args({"prog", "--transient", "nope"});
  int i = 1;
  const std::string message = invalid_argument_message([&] {
    (void)to::next_choice_arg(args.argc(), args.argv(), i, "--transient", {"full", "rom"});
  });
  EXPECT_EQ(message, "invalid value 'nope' after --transient (expected one of: full, rom)");

  Argv solver_args({"prog", "--solver", "cholesky"});
  i = 1;
  const std::string solver_message = invalid_argument_message([&] {
    (void)to::next_choice_arg(solver_args.argc(), solver_args.argv(), i, "--solver",
                              {"ilu0", "mg"});
  });
  EXPECT_EQ(solver_message,
            "invalid value 'cholesky' after --solver (expected one of: ilu0, mg)");
}

TEST(CliArgs, NextChoiceArgMissingValueNamesTheFlag) {
  Argv args({"prog", "--transient"});
  int i = 1;
  const std::string message = invalid_argument_message([&] {
    (void)to::next_choice_arg(args.argc(), args.argv(), i, "--transient", {"full", "rom"});
  });
  EXPECT_EQ(message, "missing value after --transient");
}

TEST(CliArgs, UnknownOptionMessageMatchesTheCiPinnedText) {
  // CI pins "error: unknown option" via PASS_REGULAR_EXPRESSION on both
  // drivers; the shared helper is what keeps their texts identical.
  EXPECT_EQ(to::unknown_option_message("--nope"), "unknown option --nope");
}

TEST(CliArgs, ParseShardSpecAcceptsWellFormedPairs) {
  EXPECT_EQ(to::parse_shard_spec("--shard", "0/3"), (std::pair<int, int>{0, 3}));
  EXPECT_EQ(to::parse_shard_spec("--shard", "2/3"), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(to::parse_shard_spec("--shard", "12/40"), (std::pair<int, int>{12, 40}));
}

TEST(CliArgs, ParseShardSpecRejectsTrailingGarbage) {
  // std::stoi alone accepts "1abc" as 1; the helper must reject partial
  // parses instead of silently running the wrong shard.
  for (const char* spec : {"1abc/3", "1/3def", "1abc/3def", "1.5/3", "1/3/5", "0x1/3"}) {
    const std::string message = invalid_argument_message(
        [&] { (void)to::parse_shard_spec("--shard", spec); });
    EXPECT_EQ(message, std::string("--shard expects I/N (e.g. 0/3), got: ") + spec);
  }
}

TEST(CliArgs, ParseShardSpecRejectsMalformedShapes) {
  for (const char* spec : {"nope", "/3", "1/", "/", ""}) {
    EXPECT_THROW((void)to::parse_shard_spec("--shard", spec), std::invalid_argument)
        << spec;
  }
}

TEST(CliArgs, ParseShardSpecRejectsNegatives) {
  EXPECT_THROW((void)to::parse_shard_spec("--shard", "-1/3"), std::invalid_argument);
  EXPECT_THROW((void)to::parse_shard_spec("--shard", "1/-3"), std::invalid_argument);
}

}  // namespace
