// Unit and property tests of the numerics substrate.
#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "numerics/contracts.h"
#include "numerics/dense_matrix.h"
#include "numerics/grid.h"
#include "numerics/interpolation.h"
#include "numerics/linear_solvers.h"
#include "numerics/model_reduction.h"
#include "numerics/multigrid.h"
#include "numerics/root_finding.h"
#include "numerics/sparse_matrix.h"
#include "numerics/statistics.h"
#include "numerics/tridiagonal.h"

namespace nm = brightsi::numerics;

namespace {

/// Deterministic RNG for reproducible property tests.
std::mt19937& rng() {
  static std::mt19937 gen(12345);
  return gen;
}

/// Random diagonally dominant SPD matrix of dimension n (as triplets).
nm::CsrMatrix random_spd(int n, double density = 0.2) {
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  nm::TripletList t;
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(rng()) < density) {
        const double v = value(rng());
        t.add(i, j, v);
        t.add(j, i, v);
        row_sum[static_cast<std::size_t>(i)] += std::abs(v);
        row_sum[static_cast<std::size_t>(j)] += std::abs(v);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    t.add(i, i, row_sum[static_cast<std::size_t>(i)] + 1.0);
  }
  return nm::CsrMatrix::from_triplets(n, n, t);
}

/// Random diagonally dominant nonsymmetric matrix.
nm::CsrMatrix random_nonsym(int n, double density = 0.2) {
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  nm::TripletList t;
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(rng()) < density) {
        const double v = value(rng());
        t.add(i, j, v);
        row_sum[static_cast<std::size_t>(i)] += std::abs(v);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    t.add(i, i, row_sum[static_cast<std::size_t>(i)] + 1.0);
  }
  return nm::CsrMatrix::from_triplets(n, n, t);
}

std::vector<double> random_vector(int n) {
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) {
    x = value(rng());
  }
  return v;
}

// ---------------------------------------------------------------- contracts
TEST(Contracts, EnsureThrowsWithMessage) {
  EXPECT_THROW(brightsi::ensure(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(brightsi::ensure(true, "ok"));
}

TEST(Contracts, EnsurePositiveRejectsZeroNegativeNan) {
  EXPECT_THROW(brightsi::ensure_positive(0.0, "x"), std::invalid_argument);
  EXPECT_THROW(brightsi::ensure_positive(-1.0, "x"), std::invalid_argument);
  EXPECT_THROW(brightsi::ensure_positive(std::nan(""), "x"), std::invalid_argument);
  EXPECT_NO_THROW(brightsi::ensure_positive(1e-300, "x"));
}

TEST(Contracts, EnsureNonNegativeAcceptsZero) {
  EXPECT_NO_THROW(brightsi::ensure_non_negative(0.0, "x"));
  EXPECT_THROW(brightsi::ensure_non_negative(-1e-12, "x"), std::invalid_argument);
}

TEST(Contracts, EnsureFiniteRejectsInf) {
  EXPECT_THROW(brightsi::ensure_finite(INFINITY, "x"), std::invalid_argument);
  EXPECT_NO_THROW(brightsi::ensure_finite(-5.0, "x"));
}

// ------------------------------------------------------------- sparse matrix
TEST(SparseMatrix, BuildsAndSumsDuplicates) {
  nm::TripletList t;
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(1, 0, -1.0);
  t.add(0, 1, 4.0);
  const auto m = nm::CsrMatrix::from_triplets(2, 2, t);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.non_zeros(), 3u);
}

TEST(SparseMatrix, RejectsOutOfRangeIndices) {
  nm::TripletList t;
  t.add(2, 0, 1.0);
  EXPECT_THROW(nm::CsrMatrix::from_triplets(2, 2, t), std::invalid_argument);
}

TEST(SparseMatrix, RejectsNonFiniteValues) {
  nm::TripletList t;
  t.add(0, 0, std::nan(""));
  EXPECT_THROW(nm::CsrMatrix::from_triplets(1, 1, t), std::invalid_argument);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  const auto m = random_nonsym(30);
  const auto x = random_vector(30);
  std::vector<double> y(30);
  m.multiply(x, y);
  for (int i = 0; i < 30; ++i) {
    double expected = 0.0;
    for (int j = 0; j < 30; ++j) {
      expected += m.at(i, j) * x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected, 1e-12);
  }
}

TEST(SparseMatrix, DiagonalExtraction) {
  const auto m = random_spd(20);
  const auto d = m.diagonal();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)], m.at(i, i));
  }
}

TEST(SparseMatrix, SymmetryDetection) {
  EXPECT_TRUE(random_spd(25).is_symmetric());
  // A specifically asymmetric matrix.
  nm::TripletList t;
  t.add(0, 1, 1.0);
  t.add(1, 0, 2.0);
  t.add(0, 0, 3.0);
  t.add(1, 1, 3.0);
  EXPECT_FALSE(nm::CsrMatrix::from_triplets(2, 2, t).is_symmetric());
}

TEST(SparseMatrix, ResidualComputesBMinusAx) {
  const auto m = random_spd(10);
  const auto x = random_vector(10);
  std::vector<double> b(10, 0.0);
  m.multiply(x, b);
  std::vector<double> r(10);
  const double norm = m.residual(b, x, r);
  EXPECT_NEAR(norm, 0.0, 1e-12);
}

// ------------------------------------------------------------------ solvers
class CgSolverSizes : public ::testing::TestWithParam<int> {};

TEST_P(CgSolverSizes, SolvesRandomSpdSystems) {
  const int n = GetParam();
  const auto a = random_spd(n);
  const auto x_true = random_vector(n);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(x_true, b);

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const nm::JacobiPreconditioner precond(a);
  const auto report = nm::solve_cg(a, b, x, &precond);
  ASSERT_TRUE(report.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSolverSizes, ::testing::Values(2, 5, 17, 64, 200));

class BicgstabSolverSizes : public ::testing::TestWithParam<int> {};

TEST_P(BicgstabSolverSizes, SolvesRandomNonsymmetricSystems) {
  const int n = GetParam();
  const auto a = random_nonsym(n);
  const auto x_true = random_vector(n);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(x_true, b);

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const nm::Ilu0Preconditioner precond(a);
  const auto report = nm::solve_bicgstab(a, b, x, &precond);
  ASSERT_TRUE(report.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BicgstabSolverSizes, ::testing::Values(2, 5, 17, 64, 200));

TEST(Solvers, CgSolves1dLaplacianAgainstAnalytic) {
  // -u'' = 1 on (0,1), u(0)=u(1)=0 -> u(x) = x(1-x)/2.
  const int n = 101;
  const double h = 1.0 / (n + 1);
  nm::TripletList t;
  for (int i = 0; i < n; ++i) {
    t.add(i, i, 2.0 / (h * h));
    if (i > 0) {
      t.add(i, i - 1, -1.0 / (h * h));
    }
    if (i < n - 1) {
      t.add(i, i + 1, -1.0 / (h * h));
    }
  }
  const auto a = nm::CsrMatrix::from_triplets(n, n, t);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto report = nm::solve_cg(a, b, x);
  ASSERT_TRUE(report.converged);
  for (int i = 0; i < n; ++i) {
    const double xi = (i + 1) * h;
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xi * (1.0 - xi) / 2.0, 1e-8);
  }
}

TEST(Solvers, ZeroRhsGivesZeroSolution) {
  const auto a = random_spd(20);
  std::vector<double> b(20, 0.0);
  std::vector<double> x(20, 1.0);  // nonzero initial guess
  const auto report = nm::solve_cg(a, b, x);
  ASSERT_TRUE(report.converged);
  for (const double v : x) {
    EXPECT_NEAR(v, 0.0, 1e-9);
  }
}

TEST(Solvers, ReportsResidualOnConvergence) {
  const auto a = random_spd(30);
  const auto b = random_vector(30);
  std::vector<double> x(30, 0.0);
  const auto report = nm::solve_cg(a, b, x);
  ASSERT_TRUE(report.converged);
  std::vector<double> r(30);
  EXPECT_NEAR(a.residual(b, x, r), report.residual_norm, 1e-9);
}

TEST(Solvers, Ilu0ExactForTriangularPattern) {
  // For a lower-triangular matrix ILU(0) is exact: one application solves.
  nm::TripletList t;
  t.add(0, 0, 2.0);
  t.add(1, 0, -1.0);
  t.add(1, 1, 3.0);
  t.add(2, 1, -1.0);
  t.add(2, 2, 4.0);
  const auto a = nm::CsrMatrix::from_triplets(3, 3, t);
  const nm::Ilu0Preconditioner precond(a);
  const std::vector<double> r = {2.0, 1.0, 3.0};
  std::vector<double> z(3);
  precond.apply(r, z);
  std::vector<double> az(3);
  a.multiply(z, az);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(az[static_cast<std::size_t>(i)], r[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Solvers, Ilu0ThrowsOnStructurallyZeroDiagonal) {
  nm::TripletList t;
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  const auto a = nm::CsrMatrix::from_triplets(2, 2, t);
  EXPECT_THROW(nm::Ilu0Preconditioner{a}, std::runtime_error);
}

// ------------------------------------------------------- solve-state reuse
TEST(SparseMatrix, RefillMatchesFreshBuildIncludingDuplicates) {
  nm::TripletList structure;
  structure.add(0, 0, 1.0);
  structure.add(0, 1, 1.0);
  structure.add(1, 1, 1.0);
  structure.add(1, 0, 1.0);
  structure.add(2, 2, 1.0);
  auto a = nm::CsrMatrix::from_triplets(3, 3, structure);

  nm::TripletList refill;
  refill.add(1, 0, 4.0);
  refill.add(0, 0, 2.0);
  refill.add(0, 1, -1.0);
  refill.add(0, 0, 0.5);  // duplicate stamp, summed on refill
  refill.add(2, 2, 7.0);
  a.refill_from_triplets(refill);

  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);  // not restamped -> zeroed
  EXPECT_DOUBLE_EQ(a.at(2, 2), 7.0);
  EXPECT_EQ(a.non_zeros(), 5u);  // pattern untouched
}

TEST(SparseMatrix, RefillRejectsEntriesOutsideThePattern) {
  nm::TripletList structure;
  structure.add(0, 0, 1.0);
  structure.add(1, 1, 1.0);
  auto a = nm::CsrMatrix::from_triplets(2, 2, structure);

  nm::TripletList off_pattern;
  off_pattern.add(0, 1, 1.0);
  EXPECT_THROW(a.refill_from_triplets(off_pattern), std::invalid_argument);
  nm::TripletList out_of_range;
  out_of_range.add(5, 0, 1.0);
  EXPECT_THROW(a.refill_from_triplets(out_of_range), std::invalid_argument);
}

TEST(SparseMatrix, RefillSlotCacheReproducesTheSearchPath) {
  const auto reference = random_nonsym(40);
  auto reused = reference;  // same pattern, values to be overwritten

  // Stamp every stored entry in a scrambled but fixed order, twice: the
  // first refill builds the slot cache, the second uses it.
  nm::TripletList stamps;
  for (int r = 0; r < reference.rows(); ++r) {
    for (int k = reference.row_offsets()[static_cast<std::size_t>(r)];
         k < reference.row_offsets()[static_cast<std::size_t>(r) + 1]; ++k) {
      stamps.add(r, reference.column_indices()[static_cast<std::size_t>(k)],
                 reference.values()[static_cast<std::size_t>(k)] * 2.0);
    }
  }
  std::vector<int> slots;
  reused.refill_from_triplets(stamps, &slots);
  EXPECT_EQ(slots.size(), stamps.size());
  const std::vector<double> first = reused.values();
  reused.refill_from_triplets(stamps, &slots);  // cached path
  EXPECT_EQ(reused.values(), first);
  for (int r = 0; r < reference.rows(); ++r) {
    for (int c = 0; c < reference.cols(); ++c) {
      EXPECT_DOUBLE_EQ(reused.at(r, c), 2.0 * reference.at(r, c));
    }
  }
  // A cache of the wrong length is rejected rather than trusted.
  nm::TripletList shorter;
  shorter.add(0, 0, 1.0);
  EXPECT_THROW(reused.refill_from_triplets(shorter, &slots), std::invalid_argument);
}

TEST(Solvers, Ilu0RefactorMatchesFreshFactorization) {
  const auto a1 = random_nonsym(50);

  // Same pattern, different coefficients: scale every value.
  nm::TripletList scaled;
  for (int r = 0; r < a1.rows(); ++r) {
    for (int k = a1.row_offsets()[static_cast<std::size_t>(r)];
         k < a1.row_offsets()[static_cast<std::size_t>(r) + 1]; ++k) {
      scaled.add(r, a1.column_indices()[static_cast<std::size_t>(k)],
                 a1.values()[static_cast<std::size_t>(k)] * (r % 2 == 0 ? 1.5 : 0.75));
    }
  }
  auto a2 = a1;
  a2.refill_from_triplets(scaled);

  nm::Ilu0Preconditioner reused(a1);
  reused.refactor(a2);
  const nm::Ilu0Preconditioner fresh(a2);

  const std::vector<double> r = random_vector(50);
  std::vector<double> z_reused(50), z_fresh(50);
  reused.apply(r, z_reused);
  fresh.apply(r, z_fresh);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(z_reused[static_cast<std::size_t>(i)],
                     z_fresh[static_cast<std::size_t>(i)]);
  }
}

TEST(Solvers, Ilu0RefactorRejectsADifferentPattern) {
  const auto a = random_nonsym(20);
  nm::Ilu0Preconditioner precond(a);
  nm::TripletList t;
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  const auto other = nm::CsrMatrix::from_triplets(2, 2, t);
  EXPECT_THROW(precond.refactor(other), std::invalid_argument);
}

TEST(Solvers, WorkspaceReuseGivesIdenticalSolutions) {
  // The same workspace serves BiCGSTAB and CG across systems of different
  // sizes, and never changes the computed iterates.
  nm::KrylovWorkspace workspace;

  const auto a = random_nonsym(60);
  const std::vector<double> b = random_vector(60);
  std::vector<double> x_ws(60, 0.0), x_local(60, 0.0);
  const nm::Ilu0Preconditioner precond(a);
  const auto report_ws = nm::solve_bicgstab(a, b, x_ws, &precond, {}, &workspace);
  const auto report_local = nm::solve_bicgstab(a, b, x_local, &precond);
  ASSERT_TRUE(report_ws.converged);
  EXPECT_EQ(report_ws.iterations, report_local.iterations);
  EXPECT_EQ(x_ws, x_local);

  const auto spd = random_spd(25);
  const std::vector<double> b2 = random_vector(25);
  std::vector<double> y_ws(25, 0.0), y_local(25, 0.0);
  const auto cg_ws = nm::solve_cg(spd, b2, y_ws, nullptr, {}, &workspace);
  const auto cg_local = nm::solve_cg(spd, b2, y_local);
  ASSERT_TRUE(cg_ws.converged);
  EXPECT_EQ(cg_ws.iterations, cg_local.iterations);
  EXPECT_EQ(y_ws, y_local);
}

TEST(Solvers, ReportsCarrySolveWallTime) {
  const auto a = random_nonsym(80);
  const std::vector<double> b = random_vector(80);
  std::vector<double> x(80, 0.0);
  const auto report = nm::solve_bicgstab(a, b, x);
  ASSERT_TRUE(report.converged);
  EXPECT_GE(report.solve_time_s, 0.0);
  EXPECT_LT(report.solve_time_s, 60.0);  // sanity: a wall time, not garbage
}

// --------------------------------------------------------------- tridiagonal
TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 -1; -1 2 -1; -1 2] x = [1 0 1] -> x = [1 1 1].
  std::vector<double> lower = {0.0, -1.0, -1.0};
  std::vector<double> diag = {2.0, 2.0, 2.0};
  std::vector<double> upper = {-1.0, -1.0, 0.0};
  std::vector<double> rhs = {1.0, 0.0, 1.0};
  nm::solve_tridiagonal(lower, diag, upper, rhs);
  for (const double v : rhs) {
    EXPECT_NEAR(v, 1.0, 1e-12);
  }
}

TEST(Tridiagonal, MatchesDenseSolverOnRandomSystems) {
  std::uniform_real_distribution<double> value(0.1, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5 + trial * 7;
    std::vector<double> lower(static_cast<std::size_t>(n)), diag(static_cast<std::size_t>(n)),
        upper(static_cast<std::size_t>(n)), rhs(static_cast<std::size_t>(n));
    nm::DenseMatrix dense(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      lower[idx] = (i > 0) ? -value(rng()) : 0.0;
      upper[idx] = (i < n - 1) ? -value(rng()) : 0.0;
      diag[idx] = 2.5;  // diagonally dominant
      rhs[idx] = value(rng());
      dense.at(i, i) = diag[idx];
      if (i > 0) {
        dense.at(i, i - 1) = lower[idx];
      }
      if (i < n - 1) {
        dense.at(i, i + 1) = upper[idx];
      }
    }
    const auto expected = nm::solve_dense(dense, rhs);
    nm::solve_tridiagonal(lower, diag, upper, rhs);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(rhs[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)],
                  1e-10);
    }
  }
}

TEST(Tridiagonal, SingleElementSystem) {
  std::vector<double> lower = {0.0}, diag = {4.0}, upper = {0.0}, rhs = {8.0};
  nm::solve_tridiagonal(lower, diag, upper, rhs);
  EXPECT_DOUBLE_EQ(rhs[0], 2.0);
}

TEST(Tridiagonal, ThrowsOnZeroPivot) {
  std::vector<double> lower = {0.0, 0.0}, diag = {0.0, 1.0}, upper = {0.0, 0.0},
                      rhs = {1.0, 1.0};
  EXPECT_THROW(nm::solve_tridiagonal(lower, diag, upper, rhs), std::runtime_error);
}

TEST(Tridiagonal, WorkspaceReuseAcrossSizes) {
  nm::TridiagonalSolver solver(4);
  std::vector<double> lower = {0.0, -1.0}, diag = {2.0, 2.0}, upper = {-1.0, 0.0},
                      rhs = {1.0, 1.0};
  solver.solve(lower, diag, upper, rhs);
  EXPECT_NEAR(rhs[0], 1.0, 1e-12);
  // Larger than initial workspace: must resize transparently.
  const int n = 50;
  std::vector<double> l2(n, -1.0), d2(n, 3.0), u2(n, -1.0), r2(n, 1.0);
  l2[0] = 0.0;
  u2[static_cast<std::size_t>(n - 1)] = 0.0;
  EXPECT_NO_THROW(solver.solve(l2, d2, u2, r2));
}

// -------------------------------------------------------------------- dense
TEST(DenseMatrix, LuSolveRoundTrip) {
  const int n = 12;
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  nm::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(i, j) = value(rng()) + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  const auto x_true = random_vector(n);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(x_true, b);
  const auto x = nm::solve_dense(a, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(DenseMatrix, DeterminantOfKnownMatrix) {
  nm::DenseMatrix a(2, 2);
  a.at(0, 0) = 3.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  const nm::LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(DenseMatrix, SingularMatrixThrows) {
  nm::DenseMatrix a(2, 2, 1.0);  // rank 1
  EXPECT_THROW(nm::LuFactorization{a}, std::runtime_error);
}

TEST(DenseMatrix, IdentityMultiplication) {
  const auto eye = nm::DenseMatrix::identity(5);
  const auto v = random_vector(5);
  std::vector<double> out(5);
  eye.multiply(v, out);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
  }
}

TEST(DenseMatrix, MatrixMatrixProduct) {
  nm::DenseMatrix a(2, 3, 0.0);
  nm::DenseMatrix b(3, 2, 0.0);
  int k = 1;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      a.at(i, j) = k++;
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      b.at(i, j) = k++;
    }
  }
  const auto c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] -> c = [58 64; 139 154].
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

// ------------------------------------------------------------- root finding
TEST(RootFinding, BrentFindsCosRoot) {
  const auto r = nm::find_root_brent([](double x) { return std::cos(x); }, 1.0, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, M_PI / 2.0, 1e-10);
}

TEST(RootFinding, BrentHandlesRootAtBracketEnd) {
  const auto r = nm::find_root_brent([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.0);
}

TEST(RootFinding, BrentThrowsWithoutSignChange) {
  EXPECT_THROW(
      nm::find_root_brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

class BrentPolynomials : public ::testing::TestWithParam<double> {};

TEST_P(BrentPolynomials, FindsCubeRoots) {
  const double target = GetParam();
  const auto r = nm::find_root_brent(
      [target](double x) { return x * x * x - target; }, -10.0, 10.0, 1e-14);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::cbrt(target), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, BrentPolynomials,
                         ::testing::Values(-8.0, -1.0, 0.001, 1.0, 27.0, 500.0));

TEST(RootFinding, NewtonConvergesOnSmoothFunction) {
  const auto r = nm::find_root_newton(
      [](double x) {
        return std::pair<double, double>(x * x - 2.0, 2.0 * x);
      },
      1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-10);
}

TEST(RootFinding, NewtonDampsOvershoot) {
  // atan has a famous Newton divergence from large seeds; damping rescues.
  const auto r = nm::find_root_newton(
      [](double x) {
        return std::pair<double, double>(std::atan(x), 1.0 / (1.0 + x * x));
      },
      3.0, 1e-12, 200);
  EXPECT_NEAR(r.root, 0.0, 1e-6);
}

TEST(RootFinding, BracketRootExpandsInterval) {
  const auto [a, b] = nm::bracket_root([](double x) { return x - 100.0; }, 0.0, 1.0);
  EXPECT_LE(a, 100.0);
  EXPECT_GE(b, 100.0);
}

// ------------------------------------------------------------ interpolation
TEST(Interpolation, ExactAtNodesAndLinearBetween) {
  const nm::PiecewiseLinearTable table({0.0, 1.0, 3.0}, {0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(table(0.0), 0.0);
  EXPECT_DOUBLE_EQ(table(1.0), 2.0);
  EXPECT_DOUBLE_EQ(table(3.0), 4.0);
  EXPECT_DOUBLE_EQ(table(0.5), 1.0);
  EXPECT_DOUBLE_EQ(table(2.0), 3.0);
}

TEST(Interpolation, ClampPolicyHoldsEndpoints) {
  const nm::PiecewiseLinearTable table({0.0, 1.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(table(-10.0), 5.0);
  EXPECT_DOUBLE_EQ(table(10.0), 7.0);
}

TEST(Interpolation, ThrowPolicyRejectsOutOfRange) {
  const nm::PiecewiseLinearTable table({0.0, 1.0}, {5.0, 7.0},
                                       nm::ExtrapolationPolicy::kThrow);
  EXPECT_THROW((void)table(1.5), std::out_of_range);
}

TEST(Interpolation, LinearPolicyExtrapolates) {
  const nm::PiecewiseLinearTable table({0.0, 1.0}, {0.0, 2.0},
                                       nm::ExtrapolationPolicy::kLinear);
  EXPECT_DOUBLE_EQ(table(2.0), 4.0);
  EXPECT_DOUBLE_EQ(table(-1.0), -2.0);
}

TEST(Interpolation, RejectsNonMonotoneXs) {
  EXPECT_THROW(nm::PiecewiseLinearTable({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(nm::PiecewiseLinearTable({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Interpolation, InverseOnMonotoneTable) {
  const nm::PiecewiseLinearTable table({0.0, 1.0, 2.0}, {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(table.inverse(10.0), 0.0);
  EXPECT_DOUBLE_EQ(table.inverse(15.0), 0.5);
  EXPECT_DOUBLE_EQ(table.inverse(30.0), 1.5);
}

TEST(Interpolation, InverseOnDecreasingTable) {
  const nm::PiecewiseLinearTable table({0.0, 1.0}, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(table.inverse(5.0), 0.5);
}

TEST(Interpolation, TrapezoidIntegralOfLinearIsExact) {
  const std::vector<double> xs = {0.0, 0.5, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0, 4.0};  // y = 2x
  EXPECT_DOUBLE_EQ(nm::trapezoid_integral(xs, ys), 4.0);  // integral of 2x on [0,2]
}

// -------------------------------------------------------------------- grids
TEST(Grid, Grid2IndexingRoundTrip) {
  nm::Grid2<double> g(4, 3, 0.0);
  g(2, 1) = 7.5;
  EXPECT_DOUBLE_EQ(g.at(2, 1), 7.5);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_THROW((void)g.at(4, 0), std::invalid_argument);
  EXPECT_THROW((void)g.at(0, 3), std::invalid_argument);
}

TEST(Grid, Grid3IndexingRoundTrip) {
  nm::Grid3<double> g(3, 4, 5, 1.0);
  g(2, 3, 4) = -2.0;
  EXPECT_DOUBLE_EQ(g.at(2, 3, 4), -2.0);
  EXPECT_EQ(g.size(), 60u);
  EXPECT_THROW((void)g.at(3, 0, 0), std::invalid_argument);
}

TEST(Grid, FillResetsAllValues) {
  nm::Grid2<double> g(5, 5, 1.0);
  g.fill(3.0);
  for (const double v : g.data()) {
    EXPECT_DOUBLE_EQ(v, 3.0);
  }
}

TEST(Grid, RejectsNonPositiveDimensions) {
  EXPECT_THROW((nm::Grid2<double>(0, 3)), std::invalid_argument);
  EXPECT_THROW((nm::Grid3<double>(2, -1, 3)), std::invalid_argument);
}

// --------------------------------------------------------------- statistics
TEST(Statistics, SummaryOfKnownSamples) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto s = nm::summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(nm::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(nm::percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(nm::percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(nm::percentile(v, 25.0), 20.0);
}

TEST(Statistics, MaxErrors) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.1, 2.0, 2.7};
  EXPECT_NEAR(nm::max_abs_difference(a, b), 0.3, 1e-12);
  EXPECT_NEAR(nm::max_relative_error(a, b), 0.3 / 2.7, 1e-12);
}

TEST(Statistics, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(nm::summarize(empty), std::invalid_argument);
  EXPECT_THROW(nm::percentile(empty, 50.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Geometric multigrid (numerics/multigrid.h)
// ---------------------------------------------------------------------------

/// Anisotropic 7-point grid operator on an nx x ny x nz box (x fastest, z
/// slowest — the thermal model's layout): face conductance k/h per
/// direction plus a uniform diagonal shift (a mass/film term) that keeps
/// the matrix nonsingular. `dz` holds the per-slice thicknesses.
nm::CsrMatrix grid_operator(int nx, int ny, int nz, double kx, double ky, double kz,
                            const std::vector<double>& dz, double diagonal_shift) {
  auto idx = [&](int ix, int iy, int iz) { return (iz * ny + iy) * nx + ix; };
  nm::TripletList t;
  auto pair = [&](int a, int b, double g) {
    t.add(a, a, g);
    t.add(b, b, g);
    t.add(a, b, -g);
    t.add(b, a, -g);
  };
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const int me = idx(ix, iy, iz);
        if (ix + 1 < nx) {
          pair(me, idx(ix + 1, iy, iz), kx);
        }
        if (iy + 1 < ny) {
          pair(me, idx(ix, iy + 1, iz), ky);
        }
        if (iz + 1 < nz) {
          const double h = (dz[static_cast<std::size_t>(iz)] +
                            dz[static_cast<std::size_t>(iz) + 1]) / 2.0;
          pair(me, idx(ix, iy, iz + 1), kz / h);
        }
        t.add(me, me, diagonal_shift);
      }
    }
  }
  const int n = nx * ny * nz;
  return nm::CsrMatrix::from_triplets(n, n, t);
}

TEST(Multigrid, HierarchyHalvesZUntilOne) {
  const std::vector<double> dz(8, 0.25);
  const nm::CsrMatrix a = grid_operator(3, 2, 8, 1.0, 1.0, 10.0, dz, 0.5);
  const nm::MultigridPreconditioner mg(a, /*plane_cells=*/6, dz);
  ASSERT_EQ(mg.level_count(), 4);  // z: 8 -> 4 -> 2 -> 1
  EXPECT_EQ(mg.z_count(0), 8);
  EXPECT_EQ(mg.z_count(1), 4);
  EXPECT_EQ(mg.z_count(2), 2);
  EXPECT_EQ(mg.z_count(3), 1);
  EXPECT_EQ(mg.matrix(0).rows(), 48);
  EXPECT_EQ(mg.matrix(3).rows(), 6);
}

TEST(Multigrid, GalerkinCoarseOperatorIsPtAP) {
  // Check A_1 == P^T A_0 P entry by entry, with P assembled densely from
  // the reported z-interpolation stencils.
  const int nx = 2, ny = 2, nz = 6;
  const int plane = nx * ny;
  const std::vector<double> dz = {0.1, 0.4, 0.1, 0.4, 0.1, 0.4};  // non-uniform
  const nm::CsrMatrix a = grid_operator(nx, ny, nz, 1.0, 2.0, 50.0, dz, 0.3);
  const nm::MultigridPreconditioner mg(a, plane, dz);
  ASSERT_GE(mg.level_count(), 2);
  const auto& interp = mg.interpolation(0);
  const int zc = mg.z_count(1);
  const int n = a.rows();
  const int nc = plane * zc;

  // Dense P: fine (p, fz) <- coarse (p, coarse_a/b).
  std::vector<std::vector<double>> p_dense(static_cast<std::size_t>(n),
                                           std::vector<double>(static_cast<std::size_t>(nc), 0.0));
  for (int fz = 0; fz < nz; ++fz) {
    for (int pc = 0; pc < plane; ++pc) {
      const auto& w = interp[static_cast<std::size_t>(fz)];
      p_dense[static_cast<std::size_t>(fz * plane + pc)]
             [static_cast<std::size_t>(w.coarse_a * plane + pc)] += w.weight_a;
      p_dense[static_cast<std::size_t>(fz * plane + pc)]
             [static_cast<std::size_t>(w.coarse_b * plane + pc)] += w.weight_b;
    }
  }
  for (int i = 0; i < nc; ++i) {
    for (int j = 0; j < nc; ++j) {
      double rap = 0.0;
      for (int fi = 0; fi < n; ++fi) {
        const double pi = p_dense[static_cast<std::size_t>(fi)][static_cast<std::size_t>(i)];
        if (pi == 0.0) {
          continue;
        }
        for (int fj = 0; fj < n; ++fj) {
          rap += pi * a.at(fi, fj) *
                 p_dense[static_cast<std::size_t>(fj)][static_cast<std::size_t>(j)];
        }
      }
      EXPECT_NEAR(mg.matrix(1).at(i, j), rap, 1e-12 * (1.0 + std::abs(rap)))
          << "coarse entry (" << i << "," << j << ")";
    }
  }
}

TEST(Multigrid, TwoGridCycleIsExactOnRangeOfProlongation) {
  // For r = A P e_c, the cycle's coarse correction returns exactly P e_c:
  // P (P^T A P)^{-1} P^T A P e_c = P e_c. With no pre-smoothing, a
  // two-level hierarchy and an exact coarse solve (ILU(0) is exact LU on
  // the coarse tridiagonal operator), apply() realizes that identity; the
  // post-smooth is a no-op because the residual is already zero.
  const int nz = 8;
  const std::vector<double> dz(static_cast<std::size_t>(nz), 1.0);
  const nm::CsrMatrix a = grid_operator(1, 1, nz, 1.0, 1.0, 1.0, dz, 0.2);
  nm::MultigridOptions options;
  options.pre_smooth_sweeps = 0;
  options.post_smooth_sweeps = 1;
  options.max_levels = 2;
  options.coarse_sweeps = 1;
  const nm::MultigridPreconditioner mg(a, /*plane_cells=*/1, dz, options);
  ASSERT_EQ(mg.level_count(), 2);

  const std::vector<double> e_c = {0.7, -1.3, 0.25, 2.0};
  const auto& interp = mg.interpolation(0);
  std::vector<double> pe(static_cast<std::size_t>(nz), 0.0);
  for (int fz = 0; fz < nz; ++fz) {
    const auto& w = interp[static_cast<std::size_t>(fz)];
    pe[static_cast<std::size_t>(fz)] = w.weight_a * e_c[static_cast<std::size_t>(w.coarse_a)] +
                                       w.weight_b * e_c[static_cast<std::size_t>(w.coarse_b)];
  }
  std::vector<double> r(pe.size(), 0.0);
  a.multiply(pe, r);
  std::vector<double> z(pe.size(), 0.0);
  mg.apply(r, z);
  for (std::size_t i = 0; i < pe.size(); ++i) {
    EXPECT_NEAR(z[i], pe[i], 1e-12) << "component " << i;
  }
}

TEST(Multigrid, VCycleIterationCountIsHIndependent) {
  // Refining the strongly coupled direction must not degrade the
  // preconditioner: BiCGSTAB+MG iteration counts stay flat (and small)
  // as nz doubles, where a one-level method degrades.
  std::vector<int> iterations;
  for (const int nz : {16, 32, 64}) {
    const std::vector<double> dz(static_cast<std::size_t>(nz), 1.0 / nz);
    const nm::CsrMatrix a = grid_operator(4, 4, nz, 1.0, 1.0, 1.0, dz, 1.0);
    const nm::MultigridPreconditioner mg(a, /*plane_cells=*/16, dz);
    const int n = a.rows();
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      b[static_cast<std::size_t>(i)] = std::sin(0.37 * i) + 1.5;
    }
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const nm::SolverReport report = nm::solve_bicgstab(a, b, x, &mg);
    ASSERT_TRUE(report.converged) << "nz = " << nz;
    iterations.push_back(report.iterations);
  }
  const auto [lo, hi] = std::minmax_element(iterations.begin(), iterations.end());
  EXPECT_LE(*hi, 30);
  EXPECT_LE(*hi - *lo, 5) << "iterations grew with nz: " << iterations[0] << ", "
                          << iterations[1] << ", " << iterations[2];
}

TEST(Multigrid, RefactorMatchesFreshHierarchy) {
  const int nx = 3, ny = 2, nz = 8;
  const std::vector<double> dz(static_cast<std::size_t>(nz), 0.125);
  const nm::CsrMatrix a1 = grid_operator(nx, ny, nz, 1.0, 1.0, 20.0, dz, 0.4);
  const nm::CsrMatrix a2 = grid_operator(nx, ny, nz, 2.5, 0.5, 35.0, dz, 0.9);

  nm::MultigridPreconditioner refactored(a1, nx * ny, dz);
  refactored.refactor(a2);
  const nm::MultigridPreconditioner fresh(a2, nx * ny, dz);

  std::vector<double> r(static_cast<std::size_t>(a2.rows()));
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = std::cos(0.21 * static_cast<double>(i));
  }
  std::vector<double> z_refactored(r.size(), 0.0);
  std::vector<double> z_fresh(r.size(), 0.0);
  refactored.apply(r, z_refactored);
  fresh.apply(r, z_fresh);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_DOUBLE_EQ(z_refactored[i], z_fresh[i]) << "component " << i;
  }
}

TEST(Multigrid, RefactorRejectsADifferentPattern) {
  const std::vector<double> dz(4, 0.25);
  const nm::CsrMatrix a = grid_operator(2, 2, 4, 1.0, 1.0, 5.0, dz, 0.5);
  nm::MultigridPreconditioner mg(a, 4, dz);
  const nm::CsrMatrix other = random_spd(16);
  EXPECT_THROW(mg.refactor(other), std::invalid_argument);
}

TEST(Multigrid, MixedPrecisionStaysCloseToDoubleCycle) {
  const int nx = 4, ny = 4, nz = 16;
  const std::vector<double> dz(static_cast<std::size_t>(nz), 1.0 / 16.0);
  const nm::CsrMatrix a = grid_operator(nx, ny, nz, 1.0, 1.0, 30.0, dz, 0.8);
  nm::MultigridOptions f32;
  f32.mixed_precision = true;
  const nm::MultigridPreconditioner mg_f64(a, nx * ny, dz);
  const nm::MultigridPreconditioner mg_f32(a, nx * ny, dz, f32);

  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = std::sin(0.11 * static_cast<double>(i));
  }
  std::vector<double> z64(r.size(), 0.0);
  std::vector<double> z32(r.size(), 0.0);
  mg_f64.apply(r, z64);
  mg_f32.apply(r, z32);
  double max_rel = 0.0;
  double scale = 0.0;
  for (const double v : z64) {
    scale = std::max(scale, std::abs(v));
  }
  for (std::size_t i = 0; i < r.size(); ++i) {
    max_rel = std::max(max_rel, std::abs(z64[i] - z32[i]) / scale);
  }
  // Single-precision coefficient storage perturbs the cycle at the 1e-7
  // level; the outer Krylov solve absorbs that (it is a different, equally
  // valid preconditioner).
  EXPECT_GT(max_rel, 0.0);   // mixed precision really takes the f32 path
  EXPECT_LT(max_rel, 1e-5);

  // And BiCGSTAB converges to the same solution with either cycle.
  std::vector<double> b(r);
  std::vector<double> x64(r.size(), 0.0);
  std::vector<double> x32(r.size(), 0.0);
  ASSERT_TRUE(nm::solve_bicgstab(a, b, x64, &mg_f64).converged);
  ASSERT_TRUE(nm::solve_bicgstab(a, b, x32, &mg_f32).converged);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(x64[i], x32[i], 1e-6 * (1.0 + std::abs(x64[i])));
  }
}

TEST(Multigrid, RejectsDimensionMismatch) {
  const std::vector<double> dz(4, 0.25);
  const nm::CsrMatrix a = grid_operator(2, 2, 4, 1.0, 1.0, 5.0, dz, 0.5);
  EXPECT_THROW(nm::MultigridPreconditioner(a, 5, dz), std::invalid_argument);
  EXPECT_THROW(nm::MultigridPreconditioner(a, 4, {0.25, 0.25}), std::invalid_argument);
}

TEST(SparseMatrix, CopyValuesFromRequiresIdenticalPattern) {
  nm::TripletList t1;
  t1.add(0, 0, 2.0);
  t1.add(0, 1, -1.0);
  t1.add(1, 1, 3.0);
  nm::CsrMatrix a = nm::CsrMatrix::from_triplets(2, 2, t1);

  nm::TripletList t2;
  t2.add(0, 0, 5.0);
  t2.add(0, 1, 7.0);
  t2.add(1, 1, -4.0);
  const nm::CsrMatrix b = nm::CsrMatrix::from_triplets(2, 2, t2);
  a.copy_values_from(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -4.0);

  nm::TripletList t3;  // different pattern: extra (1, 0) entry
  t3.add(0, 0, 1.0);
  t3.add(0, 1, 1.0);
  t3.add(1, 0, 1.0);
  t3.add(1, 1, 1.0);
  const nm::CsrMatrix c = nm::CsrMatrix::from_triplets(2, 2, t3);
  EXPECT_THROW(a.copy_values_from(c), std::invalid_argument);
}

// ------------------------------------------------------- model reduction

TEST(OrthonormalBasis, AppendOrthonormalizesAndDropsDependents) {
  nm::OrthonormalBasis basis(3);
  EXPECT_TRUE(basis.append(std::vector<double>{2.0, 0.0, 0.0}, 1e-12));
  // A scaled copy of a stored column is already in the span: rejected.
  EXPECT_FALSE(basis.append(std::vector<double>{-7.0, 0.0, 0.0}, 1e-12));
  EXPECT_TRUE(basis.append(std::vector<double>{1.0, 1.0, 0.0}, 1e-12));
  ASSERT_EQ(basis.size(), 2);
  // V'V = I: each column is unit length and orthogonal to the others.
  for (int a = 0; a < basis.size(); ++a) {
    for (int b = 0; b < basis.size(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < basis.dimension(); ++i) {
        dot += basis.column(a)[i] * basis.column(b)[i];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-14) << a << "," << b;
    }
  }
}

TEST(OrthonormalBasis, ProjectThenLiftReproducesVectorsInTheSpan) {
  nm::OrthonormalBasis basis(4);
  ASSERT_TRUE(basis.append(std::vector<double>{1.0, 2.0, 0.0, 0.0}, 1e-12));
  ASSERT_TRUE(basis.append(std::vector<double>{0.0, 1.0, 1.0, 0.0}, 1e-12));
  const std::vector<double> in_span = {2.0, 5.0, 1.0, 0.0};  // 2*v1 + 1*v2
  std::vector<double> coefficients(2), lifted(4);
  basis.project(in_span, coefficients);
  basis.lift(coefficients, lifted);
  for (std::size_t i = 0; i < lifted.size(); ++i) {
    EXPECT_NEAR(lifted[i], in_span[i], 1e-13) << i;
  }
  // A vector orthogonal to the span projects to zero.
  basis.project(std::vector<double>{0.0, 0.0, 0.0, 3.0}, coefficients);
  EXPECT_NEAR(coefficients[0], 0.0, 1e-14);
  EXPECT_NEAR(coefficients[1], 0.0, 1e-14);
}

TEST(OrthonormalBasis, PackedRowsMirrorTheColumns) {
  nm::OrthonormalBasis basis(3);
  ASSERT_TRUE(basis.append(std::vector<double>{1.0, 1.0, 0.0}, 1e-12));
  ASSERT_TRUE(basis.append(std::vector<double>{0.0, 1.0, 1.0}, 1e-12));
  for (std::size_t i = 0; i < basis.dimension(); ++i) {
    const std::span<const double> row = basis.packed_row(i);
    ASSERT_EQ(row.size(), static_cast<std::size_t>(basis.size()));
    for (int j = 0; j < basis.size(); ++j) {
      EXPECT_DOUBLE_EQ(row[j], basis.column(j)[i]) << i << "," << j;
    }
  }
}

TEST(BlockArnoldi, ExpandsUntilTheSubspaceIsInvariant) {
  // Cyclic shift: e1 -> e2 -> e3 -> e1. From seed e1 the Krylov subspace
  // is all of R^3, reached after two moments; a third moment adds nothing.
  const auto cycle = [](std::span<const double> in, std::span<double> out) {
    out[1] = in[0];
    out[2] = in[1];
    out[0] = in[2];
  };
  nm::OrthonormalBasis basis(3);
  const std::vector<std::vector<double>> seeds = {{1.0, 0.0, 0.0}};
  const int added = nm::block_arnoldi_expand(basis, seeds, 5, 10, 1e-12, cycle);
  EXPECT_EQ(added, 3);  // seed + two moments; the early-out stopped round 3
  EXPECT_EQ(basis.size(), 3);
}

TEST(BlockArnoldi, StopsAtTheBasisCap) {
  const auto cycle = [](std::span<const double> in, std::span<double> out) {
    out[1] = in[0];
    out[2] = in[1];
    out[0] = in[2];
  };
  nm::OrthonormalBasis basis(3);
  const std::vector<std::vector<double>> seeds = {{1.0, 0.0, 0.0}};
  const int added = nm::block_arnoldi_expand(basis, seeds, 5, 2, 1e-12, cycle);
  EXPECT_EQ(added, 2);
  EXPECT_EQ(basis.size(), 2);
}

}  // namespace
