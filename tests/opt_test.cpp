// Tests of the design-space optimization layer: objective resolution and
// negative paths, Pareto extraction, batch-session reuse, determinism of
// the optimizer output across thread counts, and the acceptance bar — the
// optimizer strictly beating the best row of the corresponding registered
// sweep plan at an equal evaluation budget.
#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report.h"
#include "opt/studies.h"
#include "sweep/registry.h"
#include "sweep/runner.h"

namespace co = brightsi::core;
namespace op = brightsi::opt;
namespace sw = brightsi::sweep;

namespace {

std::string opt_csv(const op::OptResult& result) {
  std::stringstream stream;
  op::write_opt_csv(stream, result);
  return stream.str();
}

std::string pareto_csv(const op::OptResult& result) {
  std::stringstream stream;
  op::write_pareto_csv(stream, result);
  return stream.str();
}

std::string opt_json(const op::OptResult& result) {
  std::stringstream stream;
  op::write_opt_json(stream, result);
  return stream.str();
}

/// A cheap study for structural tests: rail integrity over the VRM grid.
op::Study small_rail_study() {
  op::Study study = op::make_registered_study("vrm_placement");
  return study;
}

// -------------------------------------------------------------- objective
TEST(Objective, ResolvesAndScores) {
  const std::vector<std::string> metrics = {"net_w", "peak_t_c"};
  op::ObjectiveSpec spec = op::maximize_metric("net_w");
  spec.terms.push_back({"peak_t_c", -0.1});
  op::MetricConstraint cap;
  cap.metric = "peak_t_c";
  cap.max = 80.0;
  spec.constraints.push_back(cap);

  const op::ResolvedObjective objective(spec, metrics);
  EXPECT_DOUBLE_EQ(objective.score({10.0, 50.0}), 10.0 - 5.0);
  EXPECT_TRUE(objective.feasible({10.0, 50.0}));
  EXPECT_FALSE(objective.feasible({10.0, 80.5}));
  EXPECT_FALSE(objective.has_pareto_pair());
}

TEST(Objective, NanMetricsAreExplicitlyInfeasible) {
  // NaN fails every ordered comparison, so a naive `min <= v && v <= max`
  // would already reject it — but a naive `!(v < min) && !(v > max)` would
  // accept it. Pin the semantics in both bound directions, and pin the
  // violation measure the evolutionary optimizer ranks infeasibles by.
  const double nan = std::nan("");
  const std::vector<std::string> metrics = {"net_w", "peak_t_c"};
  op::ObjectiveSpec spec = op::maximize_metric("net_w");
  op::MetricConstraint floor;  // net_w >= 1 (lower bound)
  floor.metric = "net_w";
  floor.min = 1.0;
  spec.constraints.push_back(floor);
  op::MetricConstraint cap;  // peak_t_c <= 80 (upper bound)
  cap.metric = "peak_t_c";
  cap.max = 80.0;
  spec.constraints.push_back(cap);

  const op::ResolvedObjective objective(spec, metrics);
  EXPECT_TRUE(objective.feasible({10.0, 50.0}));
  EXPECT_FALSE(objective.feasible({nan, 50.0}));  // NaN under the floor
  EXPECT_FALSE(objective.feasible({10.0, nan}));  // NaN under the cap

  EXPECT_DOUBLE_EQ(objective.constraint_violation({10.0, 50.0}), 0.0);
  EXPECT_DOUBLE_EQ(objective.constraint_violation({0.25, 90.0}), 0.75 + 10.0);
  EXPECT_TRUE(std::isinf(objective.constraint_violation({nan, 50.0})));
  EXPECT_TRUE(std::isinf(objective.constraint_violation({10.0, nan})));
  // An unconstrained NaN metric does not poison feasibility of the rest.
  op::ObjectiveSpec only_cap = op::maximize_metric("net_w");
  only_cap.constraints.push_back(cap);
  const op::ResolvedObjective partial(only_cap, metrics);
  EXPECT_TRUE(partial.feasible({nan, 50.0}));
}

TEST(Objective, DescribeReadsNaturally) {
  op::ObjectiveSpec spec = op::maximize_metric("net_w");
  op::MetricConstraint cap;
  cap.metric = "peak_t_c";
  cap.max = 86.85;
  spec.constraints.push_back(cap);
  EXPECT_EQ(spec.describe(), "maximize net_w subject to peak_t_c <= 86.85");
  EXPECT_EQ(op::minimize_metric("peak_t_c").describe(), "minimize peak_t_c");
}

TEST(Objective, InvalidSpecsAreRejected) {
  const std::vector<std::string> metrics = {"net_w", "peak_t_c"};
  // Unknown metric.
  EXPECT_THROW(op::ResolvedObjective(op::maximize_metric("no_such_metric"), metrics),
               std::invalid_argument);
  // Empty term list.
  EXPECT_THROW(op::ResolvedObjective(op::ObjectiveSpec{}, metrics), std::invalid_argument);
  // Infeasible constraint window (min > max).
  op::ObjectiveSpec infeasible = op::maximize_metric("net_w");
  op::MetricConstraint window;
  window.metric = "peak_t_c";
  window.min = 90.0;
  window.max = 80.0;
  infeasible.constraints.push_back(window);
  EXPECT_THROW(op::ResolvedObjective(infeasible, metrics), std::invalid_argument);
  // Half-specified Pareto pair.
  op::ObjectiveSpec half = op::maximize_metric("net_w");
  half.pareto_maximize = "net_w";
  EXPECT_THROW(op::ResolvedObjective(half, metrics), std::invalid_argument);
  // Zero-weight term.
  op::ObjectiveSpec zero;
  zero.terms.push_back({"net_w", 0.0});
  EXPECT_THROW(op::ResolvedObjective(zero, metrics), std::invalid_argument);
}

TEST(Objective, CliTermAndBoundParsing) {
  const op::ObjectiveTerm plain = op::parse_objective_term("net_w", 1.0);
  EXPECT_EQ(plain.metric, "net_w");
  EXPECT_DOUBLE_EQ(plain.weight, 1.0);
  const op::ObjectiveTerm weighted = op::parse_objective_term("peak_t_c*0.25", -1.0);
  EXPECT_EQ(weighted.metric, "peak_t_c");
  EXPECT_DOUBLE_EQ(weighted.weight, -0.25);
  EXPECT_THROW((void)op::parse_objective_term("", 1.0), std::invalid_argument);
  EXPECT_THROW((void)op::parse_objective_term("net_w*zero", 1.0), std::invalid_argument);
  EXPECT_THROW((void)op::parse_objective_term("net_w*-2", 1.0), std::invalid_argument);

  const op::MetricConstraint cap = op::parse_metric_bound("peak_t_c=86.85", true);
  EXPECT_EQ(cap.metric, "peak_t_c");
  EXPECT_DOUBLE_EQ(cap.max, 86.85);
  EXPECT_FALSE(std::isfinite(cap.min));
  const op::MetricConstraint floor = op::parse_metric_bound("net_w=5", false);
  EXPECT_DOUBLE_EQ(floor.min, 5.0);
  EXPECT_THROW((void)op::parse_metric_bound("peak_t_c", true), std::invalid_argument);
  EXPECT_THROW((void)op::parse_metric_bound("=5", true), std::invalid_argument);
  EXPECT_THROW((void)op::parse_metric_bound("peak_t_c=hot", true), std::invalid_argument);
}

// ------------------------------------------------------------------ study
TEST(Study, RegisteredStudiesValidate) {
  for (const op::StudyDescription& description : op::registered_studies()) {
    const op::Study study = op::make_registered_study(description.name);
    EXPECT_EQ(study.name, description.name);
    EXPECT_NO_THROW(study.validate()) << description.name;
  }
  EXPECT_THROW((void)op::make_registered_study("nope"), std::invalid_argument);
}

TEST(Study, InvalidStudiesAreRejected) {
  op::Study study = small_rail_study();
  study.parameters.clear();  // empty parameter set
  EXPECT_THROW(study.validate(), std::invalid_argument);

  study = small_rail_study();
  study.parameters.push_back({"not_a_parameter", 0.0, 1.0, false});
  EXPECT_THROW(study.validate(), std::invalid_argument);

  study = small_rail_study();
  study.parameters[0].lower = 9.0;  // above upper
  EXPECT_THROW(study.validate(), std::invalid_argument);

  study = small_rail_study();
  study.parameters.push_back(study.parameters.front());  // duplicate
  EXPECT_THROW(study.validate(), std::invalid_argument);

  study = small_rail_study();
  study.objective = op::maximize_metric("no_such_metric");
  EXPECT_THROW(study.validate(), std::invalid_argument);

  EXPECT_THROW((void)op::optimize(small_rail_study(), {.budget = 0}),
               std::invalid_argument);
}

// ----------------------------------------------------------------- pareto
TEST(Pareto, ExtractsTheNonDominatedSet) {
  sw::SweepResult archive;
  archive.metric_names = {"gain", "cost"};
  const auto add = [&](double gain, double cost) {
    sw::ScenarioResult row;
    row.name = "p";
    row.metrics = {gain, cost};
    archive.rows.push_back(row);
  };
  add(1.0, 1.0);   // on the front
  add(2.0, 2.0);   // on the front
  add(1.5, 3.0);   // dominated by (2, 2)
  add(3.0, 5.0);   // on the front
  add(1.0, 1.0);   // duplicate of row 0: mutually non-dominating, kept
  add(0.5, 0.5);   // on the front (cheapest)

  const std::vector<int> front = op::pareto_front(archive, {0, 1, 2, 3, 4, 5}, 0, 1);
  // Ascending in the maximized metric, ties by archive order.
  EXPECT_EQ(front, (std::vector<int>{5, 0, 4, 1, 3}));
}

// ---------------------------------------------------------- batch session
TEST(BatchSession, PersistsWorkerCachesAcrossGenerations) {
  const op::Study study = op::make_registered_study("channel_geometry");
  sw::BatchEvaluationSession session(study.base, study.evaluator, {1, true});

  std::vector<sw::ScenarioSpec> generation;
  for (const double flow : {100.0, 400.0, 900.0}) {
    sw::ScenarioSpec spec;
    spec.name = "flow_ml_min=" + sw::format_sweep_value(flow);
    spec.set("flow_ml_min", flow);
    generation.push_back(std::move(spec));
  }
  const auto first = session.evaluate(generation);
  const auto second = session.evaluate(generation);  // next optimizer generation
  ASSERT_EQ(first.size(), 3u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_FALSE(first[i].failed) << first[i].error;
    EXPECT_EQ(first[i].metrics, second[i].metrics);  // bitwise repeatable
  }
  EXPECT_EQ(session.evaluation_count(), 6);
  // One thermal structure serves all six evaluations across both calls.
  EXPECT_EQ(session.model_build_count(), 1);

  // Invalid candidates become failed rows, not aborts — same as the
  // sweep runner's contract.
  sw::ScenarioSpec bad;
  bad.name = "bad";
  bad.set("channel_groups", 7.0);  // 88 % 7 != 0 -> validate() throws
  const auto rows = session.evaluate({bad});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].failed);
  EXPECT_FALSE(rows[0].error.empty());
}

// -------------------------------------------------------------- optimizer
TEST(Optimizer, DeterministicAcrossThreadCounts) {
  // The acceptance bar: the same study at 1 and 4 threads must produce
  // byte-identical archive CSV, Pareto CSV and JSON output (the optimizer
  // mirrors the sweep engine's determinism contract).
  const op::Study study = op::make_registered_study("vrm_placement");
  op::OptimizerOptions serial;
  serial.budget = 40;
  serial.thread_count = 1;
  op::OptimizerOptions parallel = serial;
  parallel.thread_count = 4;

  const op::OptResult result_1 = op::optimize(study, serial);
  const op::OptResult result_4 = op::optimize(study, parallel);
  EXPECT_EQ(result_1.best_index, result_4.best_index);
  EXPECT_EQ(result_1.pareto_indices, result_4.pareto_indices);
  EXPECT_EQ(opt_csv(result_1), opt_csv(result_4));
  EXPECT_EQ(pareto_csv(result_1), pareto_csv(result_4));
  EXPECT_EQ(opt_json(result_1), opt_json(result_4));
}

TEST(Optimizer, BudgetIsAHardCapAndDedupNeverReevaluates) {
  const op::Study study = small_rail_study();
  op::OptimizerOptions options;
  options.budget = 17;  // awkward: forces a truncated generation
  options.thread_count = 2;
  const op::OptResult result = op::optimize(study, options);
  EXPECT_EQ(result.evaluations(), 17);
  ASSERT_GE(result.best_index, 0);
  // Every archived candidate is unique (deduplication works).
  for (std::size_t i = 0; i < result.archive.rows.size(); ++i) {
    for (std::size_t j = i + 1; j < result.archive.rows.size(); ++j) {
      EXPECT_NE(result.archive.rows[i].name, result.archive.rows[j].name);
    }
  }
  // Scores and feasibility line up with the archive.
  EXPECT_EQ(result.scores.size(), result.archive.rows.size());
  EXPECT_EQ(result.feasible.size(), result.archive.rows.size());
}

TEST(Optimizer, InfeasibleConstraintYieldsNoBestButKeepsTheArchive) {
  op::Study study = small_rail_study();
  op::MetricConstraint impossible;
  impossible.metric = "rail_min_v";
  impossible.min = 2.0;  // rails never exceed the 1 V set point
  study.objective.constraints.push_back(impossible);
  op::OptimizerOptions options;
  options.budget = 6;
  options.thread_count = 2;
  const op::OptResult result = op::optimize(study, options);
  EXPECT_EQ(result.best_index, -1);
  EXPECT_EQ(result.best(), nullptr);
  EXPECT_EQ(result.evaluations(), 6);
  EXPECT_TRUE(result.pareto_indices.empty());
  for (const bool feasible : result.feasible) {
    EXPECT_FALSE(feasible);
  }
}

TEST(Optimizer, BeatsTheRegisteredSweepPlanAtEqualBudget) {
  // The PR acceptance criterion: at the *same evaluation budget* as the
  // registered ablation_geometry plan (14 design points), the optimizer
  // must find a channel-geometry/flow design whose net power strictly
  // improves on the plan's best row, with peak temperature within the
  // study's configured cap (T_max <= 360 K).
  const sw::SweepPlan plan = sw::make_registered_plan("ablation_geometry");
  const sw::SweepResult sweep = sw::SweepRunner({4}).run(plan);
  ASSERT_EQ(sweep.failure_count(), 0);
  const std::size_t net_index = 4;  // net_w column of the array evaluator
  ASSERT_EQ(sweep.metric_names[net_index], "net_w");
  double plan_best_net_w = 0.0;
  for (const sw::ScenarioResult& row : sweep.rows) {
    plan_best_net_w = std::max(plan_best_net_w, row.metrics[net_index]);
  }

  op::Study study = op::make_registered_study("channel_geometry");
  study.base.thermal_grid.axial_cells = 8;  // keep the suite quick
  op::OptimizerOptions options;
  options.budget = static_cast<int>(plan.scenarios.size());  // equal budget
  const op::OptResult result = op::optimize(study, options);

  ASSERT_NE(result.best(), nullptr);
  ASSERT_EQ(study.evaluator.metrics[net_index], "net_w");
  const double opt_net_w = result.best()->metrics[net_index];
  EXPECT_GT(opt_net_w, plan_best_net_w);  // strict improvement
  const double peak_t_c = result.best()->metrics[5];
  ASSERT_EQ(study.evaluator.metrics[5], "peak_t_c");
  EXPECT_LE(peak_t_c, 360.0 - 273.15);  // within the configured cap
  // And the cap is active, not vacuous: the archive contains candidates.
  EXPECT_EQ(result.evaluations(), static_cast<long long>(plan.scenarios.size()));
}

TEST(Optimizer, ParetoFrontTradesNetPowerAgainstPeakTemperature) {
  op::Study study = op::make_registered_study("channel_geometry");
  study.base.thermal_grid.axial_cells = 8;
  op::OptimizerOptions options;
  options.budget = 24;
  const op::OptResult result = op::optimize(study, options);
  ASSERT_GE(result.pareto_indices.size(), 2u);  // a real trade-off surface
  // Ascending net power implies ascending peak temperature along the
  // front (otherwise a point would dominate its neighbour).
  for (std::size_t i = 1; i < result.pareto_indices.size(); ++i) {
    const auto& previous =
        result.archive.rows[static_cast<std::size_t>(result.pareto_indices[i - 1])];
    const auto& current =
        result.archive.rows[static_cast<std::size_t>(result.pareto_indices[i])];
    EXPECT_GE(current.metrics[4], previous.metrics[4]);  // net_w ascending
    EXPECT_GE(current.metrics[5], previous.metrics[5]);  // peak_t_c ascending
  }
  // The incumbent is on the front.
  EXPECT_NE(std::find(result.pareto_indices.begin(), result.pareto_indices.end(),
                      result.best_index),
            result.pareto_indices.end());
}

// ---------------------------------------------------------- JSON escaping
TEST(JsonEscaping, SweepAndOptWritersEscapeHostileStrings) {
  // Scenario names and error messages are the only free-form strings in
  // the emitters; cover quotes, backslashes, newlines and control bytes.
  const std::string hostile = "a\"b\\c\nd\te\x01" "f";
  EXPECT_EQ(co::json_escape(hostile), "a\\\"b\\\\c\\nd\\te\\u0001f");

  sw::SweepPlan plan;
  plan.name = "hostile \"plan\"";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::rail_integrity_evaluator();
  sw::ScenarioSpec scenario;
  scenario.name = hostile;
  scenario.set("vrm_grid_n", 4.0);
  plan.add(scenario);
  const sw::SweepResult sweep = sw::SweepRunner({1}).run(plan);
  std::stringstream sweep_json;
  sw::write_sweep_json(sweep_json, sweep);
  const std::string sweep_text = sweep_json.str();
  EXPECT_NE(sweep_text.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
  EXPECT_NE(sweep_text.find("hostile \\\"plan\\\""), std::string::npos);
  // No raw control bytes survive into the document.
  for (const char c : sweep_text) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n');
  }

  // The opt JSON writer inherits the same escaping for study names and
  // scenario rows.
  op::Study study = small_rail_study();
  study.name = "study \"quoted\"\n";
  op::OptimizerOptions options;
  options.budget = 3;
  options.thread_count = 1;
  const op::OptResult result = op::optimize(study, options);
  const std::string opt_text = opt_json(result);
  EXPECT_NE(opt_text.find("study \\\"quoted\\\"\\n"), std::string::npos);
  for (const char c : opt_text) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n');
  }
}

}  // namespace
