// Tests of the scenario-sweep engine: plan expansion, scenario overrides,
// runner determinism across thread counts, and cross-checks of the sweep
// rows against direct evaluations of the underlying models.
#include <sstream>

#include <variant>

#include <gtest/gtest.h>

#include "core/cosim.h"
#include "flowcell/cell_array.h"
#include "hydraulics/pump.h"
#include "sweep/registry.h"
#include "sweep/runner.h"
#include "sweep/system_cache.h"

namespace co = brightsi::core;
namespace fc = brightsi::flowcell;
namespace hy = brightsi::hydraulics;
namespace sw = brightsi::sweep;

namespace {

std::string csv_of(const sw::SweepResult& result) {
  std::stringstream stream;
  sw::write_sweep_csv(stream, result);
  return stream.str();
}

std::string json_of(const sw::SweepResult& result) {
  std::stringstream stream;
  sw::write_sweep_json(stream, result);
  return stream.str();
}

/// A fast 2x2 co-simulation grid (coarse thermal axis keeps it quick).
sw::SweepPlan small_cosim_grid() {
  sw::SweepPlan plan;
  plan.name = "test_grid";
  plan.base = co::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;
  plan.evaluator = sw::cosim_evaluator();
  plan.add_grid({{"channel_gap_um", {150.0, 250.0}},
                 {"channel_height_um", {300.0, 500.0}}});
  return plan;
}

TEST(ScenarioSpec, SetAppendsAndReplaces) {
  sw::ScenarioSpec scenario;
  scenario.set("flow_ml_min", 676.0);
  scenario.set("inlet_c", 27.0);
  scenario.set("flow_ml_min", 48.0);
  ASSERT_EQ(scenario.overrides.size(), 2u);
  EXPECT_DOUBLE_EQ(*scenario.get("flow_ml_min"), 48.0);
  EXPECT_DOUBLE_EQ(*scenario.get("inlet_c"), 27.0);
  EXPECT_FALSE(scenario.get("channel_gap_um").has_value());
}

TEST(ScenarioSpec, ApplyRewritesTheConfig) {
  const co::SystemConfig base = co::power7_system_config();
  sw::ScenarioSpec scenario;
  scenario.set("flow_ml_min", 48.0);
  scenario.set("inlet_c", 37.0);
  scenario.set("vrm_grid_n", 6.0);
  const co::SystemConfig config = sw::apply_scenario(base, scenario);
  EXPECT_NEAR(config.array_spec.total_flow_m3_per_s, 48.0 * 1e-6 / 60.0, 1e-15);
  EXPECT_NEAR(config.array_spec.inlet_temperature_k, 310.15, 1e-12);
  EXPECT_EQ(config.vrm_spec.count_x, 6);
  EXPECT_EQ(config.vrm_spec.count_y, 6);
  // The base is untouched.
  EXPECT_EQ(base.vrm_spec.count_x, 4);
}

TEST(ScenarioSpec, UnknownParameterThrows) {
  const co::SystemConfig base = co::power7_system_config();
  sw::ScenarioSpec scenario;
  scenario.set("not_a_parameter", 1.0);
  EXPECT_THROW((void)sw::apply_scenario(base, scenario), std::invalid_argument);
}

TEST(ScenarioSpec, EveryRegistryEntryIsNamedAndDescribed) {
  for (const sw::ParameterInfo& info : sw::parameter_registry()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
    EXPECT_EQ(sw::find_parameter(info.name), &info);
  }
  EXPECT_EQ(sw::find_parameter("nope"), nullptr);
}

TEST(SweepPlan, GridExpandsRowMajor) {
  sw::SweepPlan plan;
  plan.add_grid({{"channel_gap_um", {100.0, 200.0}},
                 {"flow_ml_min", {48.0, 676.0}}},
                {{"inlet_c", 27.0}});
  ASSERT_EQ(plan.scenarios.size(), 4u);
  // Last axis varies fastest.
  EXPECT_DOUBLE_EQ(*plan.scenarios[0].get("channel_gap_um"), 100.0);
  EXPECT_DOUBLE_EQ(*plan.scenarios[0].get("flow_ml_min"), 48.0);
  EXPECT_DOUBLE_EQ(*plan.scenarios[1].get("flow_ml_min"), 676.0);
  EXPECT_DOUBLE_EQ(*plan.scenarios[2].get("channel_gap_um"), 200.0);
  // The common override lands on every scenario.
  for (const sw::ScenarioSpec& scenario : plan.scenarios) {
    EXPECT_DOUBLE_EQ(*scenario.get("inlet_c"), 27.0);
  }
  EXPECT_EQ(plan.scenarios[0].name, "channel_gap_um=100 flow_ml_min=48");
}

TEST(SweepPlan, EmptyAxisExpandsToNothing) {
  sw::SweepPlan plan;
  plan.add_grid({{"channel_gap_um", {100.0, 200.0}}, {"flow_ml_min", {}}});
  EXPECT_TRUE(plan.scenarios.empty());
}

TEST(SweepPlan, AddListAutoNames) {
  sw::SweepPlan plan;
  plan.add_list("flow_ml_min", {48.0, 676.0});
  ASSERT_EQ(plan.scenarios.size(), 2u);
  EXPECT_EQ(plan.scenarios[0].name, "flow_ml_min=48");
  EXPECT_EQ(plan.scenarios[1].name, "flow_ml_min=676");
}

TEST(SweepRunner, EmptyPlanYieldsEmptyResult) {
  sw::SweepPlan plan;
  plan.name = "empty";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::array_power_evaluator();
  const sw::SweepRunner runner({4});
  const sw::SweepResult result = runner.run(plan);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.failure_count(), 0);
  // Header-only CSV, empty JSON records.
  EXPECT_EQ(csv_of(result),
            "scenario,current_1v_a,power_density_w_cm2,dp_bar,pump_w,net_w,error\n");
}

TEST(SweepRunner, PlanWithoutEvaluatorThrows) {
  sw::SweepPlan plan;
  plan.base = co::power7_system_config();
  const sw::SweepRunner runner;
  EXPECT_THROW((void)runner.run(plan), std::invalid_argument);
}

TEST(SweepRunner, SingleScenarioMatchesDirectArrayEvaluation) {
  sw::SweepPlan plan;
  plan.name = "single";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::array_power_evaluator();
  sw::ScenarioSpec scenario;
  scenario.name = "nominal";
  scenario.set("flow_ml_min", 200.0);
  plan.add(scenario);

  const sw::SweepResult result = sw::SweepRunner({1}).run(plan);
  ASSERT_EQ(result.rows.size(), 1u);
  ASSERT_FALSE(result.rows[0].failed);

  // Direct evaluation, the way bench/ablation_geometry does it.
  auto spec = plan.base.array_spec;
  spec.total_flow_m3_per_s = 200.0 * 1e-6 / 60.0;
  const fc::FlowCellArray array(spec, plan.base.chemistry, plan.base.fvm);
  const double current = array.current_at_voltage(1.0, {spec.inlet_temperature_k});
  const auto h = array.hydraulics_at_spec_flow();
  const double pump =
      hy::pumping_power_w(h.pressure_drop_pa, spec.total_flow_m3_per_s, 0.5);

  EXPECT_DOUBLE_EQ(result.rows[0].metrics[0], current);
  EXPECT_DOUBLE_EQ(result.rows[0].metrics[2], h.pressure_drop_pa / 1e5);
  EXPECT_DOUBLE_EQ(result.rows[0].metrics[3], pump);
  EXPECT_DOUBLE_EQ(result.rows[0].metrics[4], current - pump);
}

TEST(SweepRunner, GeometryGridMatchesDirectCosim) {
  const sw::SweepPlan plan = small_cosim_grid();
  const sw::SweepResult result = sw::SweepRunner({2}).run(plan);
  ASSERT_EQ(result.rows.size(), 4u);

  for (const sw::ScenarioResult& row : result.rows) {
    ASSERT_FALSE(row.failed) << row.error;
    co::SystemConfig config = plan.base;
    ASSERT_EQ(row.overrides[0].first, "channel_gap_um");
    ASSERT_EQ(row.overrides[1].first, "channel_height_um");
    config.array_spec.geometry.electrode_gap_m = row.overrides[0].second * 1e-6;
    config.array_spec.geometry.channel_height_m = row.overrides[1].second * 1e-6;
    const co::IntegratedMpsocSystem system(config);
    const co::CoSimReport report = system.run();
    EXPECT_DOUBLE_EQ(row.metrics[2], report.peak_temperature_c) << row.name;
    EXPECT_DOUBLE_EQ(row.metrics[10], report.net_power_w) << row.name;
    EXPECT_DOUBLE_EQ(row.metrics[12], report.coupled_current_a) << row.name;
  }
}

TEST(SweepRunner, ByteIdenticalAcrossThreadCounts) {
  // The acceptance bar: >= 4 threads must produce byte-identical result
  // rows to a 1-thread run of the same plan.
  sw::SweepPlan plan = sw::make_registered_plan("ablation_geometry");
  const sw::SweepResult serial = sw::SweepRunner({1}).run(plan);
  const sw::SweepResult parallel4 = sw::SweepRunner({4}).run(plan);
  const sw::SweepResult parallel8 = sw::SweepRunner({8}).run(plan);
  EXPECT_EQ(csv_of(serial), csv_of(parallel4));
  EXPECT_EQ(csv_of(serial), csv_of(parallel8));
  EXPECT_EQ(json_of(serial), json_of(parallel4));
  ASSERT_EQ(serial.rows.size(), 14u);
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(parallel4.rows[i].name, serial.rows[i].name);
  }
}

TEST(SweepRunner, FailedScenarioBecomesARowNotAnAbort) {
  sw::SweepPlan plan;
  plan.name = "failing";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::array_power_evaluator();
  sw::ScenarioSpec bad;
  bad.name = "bad groups";
  bad.set("channel_groups", 7.0);  // 88 % 7 != 0 -> validate() throws
  plan.add(bad);
  sw::ScenarioSpec good;
  good.name = "nominal";
  plan.add(good);

  const sw::SweepResult result = sw::SweepRunner({2}).run(plan);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_TRUE(result.rows[0].failed);
  EXPECT_FALSE(result.rows[0].error.empty());
  EXPECT_FALSE(result.rows[1].failed);
  EXPECT_EQ(result.failure_count(), 1);
}

TEST(SweepRegistry, PlansValidateAndMatchTheBenches) {
  for (const sw::PlanDescription& description : sw::registered_plans()) {
    const sw::SweepPlan plan = sw::make_registered_plan(description.name);
    EXPECT_EQ(plan.name, description.name);
    EXPECT_NO_THROW(plan.validate()) << description.name;
    EXPECT_FALSE(plan.scenarios.empty()) << description.name;
  }
  EXPECT_THROW((void)sw::make_registered_plan("nope"), std::invalid_argument);
  // The geometry plan carries the bench's 14 design points.
  EXPECT_EQ(sw::make_registered_plan("ablation_geometry").scenarios.size(), 14u);
  EXPECT_EQ(sw::make_registered_plan("ablation_vrm_placement").scenarios.size(), 12u);
  EXPECT_EQ(sw::make_registered_plan("temp_sensitivity").scenarios.size(), 3u);
  // The 3D-stack plan: 3x2x2 grid + the interlayer-vs-top-only pair.
  EXPECT_EQ(sw::make_registered_plan("stack_3d").scenarios.size(), 14u);
}

TEST(ScenarioSpec, StackParametersRebuildTheMultiDieStack) {
  const co::SystemConfig base = co::power7_system_config();

  sw::ScenarioSpec two_dies;
  two_dies.set("die_count", 2.0);
  const co::SystemConfig stacked = sw::apply_scenario(base, two_dies);
  EXPECT_EQ(stacked.stack.source_layer_count(), 2);
  EXPECT_EQ(stacked.stack.channel_layer_count(), 2);  // interlayer by default
  ASSERT_EQ(stacked.upper_die_power.size(), 1u);       // per-die workload sized
  EXPECT_NO_THROW(stacked.validate());

  sw::ScenarioSpec top_only;
  top_only.set("die_count", 3.0);
  top_only.set("interlayer", 0.0);
  const co::SystemConfig capped = sw::apply_scenario(base, top_only);
  EXPECT_EQ(capped.stack.source_layer_count(), 3);
  EXPECT_EQ(capped.stack.channel_layer_count(), 1);
  EXPECT_EQ(capped.upper_die_power.size(), 2u);

  sw::ScenarioSpec resolved;
  resolved.set("die_count", 2.0);
  resolved.set("stack_layers", 5.0);
  resolved.set("stack_channel_height_um", 800.0);
  const co::SystemConfig fine = sw::apply_scenario(base, resolved);
  for (const brightsi::thermal::MicrochannelLayerSpec* channel :
       fine.stack.channel_layers()) {
    EXPECT_DOUBLE_EQ(channel->layer_height_m, 800e-6);
  }
  // All four stack parameters key the worker structure cache.
  for (const char* name :
       {"die_count", "interlayer", "stack_layers", "stack_channel_height_um"}) {
    const sw::ParameterInfo* info = sw::find_parameter(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_TRUE(info->thermal_structural) << name;
  }
}

TEST(ScenarioSpec, StackParametersComposeInAnyOverrideOrder) {
  const co::SystemConfig base = co::power7_system_config();

  // height-then-dies must equal dies-then-height (a rebuild carries the
  // current channel height forward instead of resetting it).
  sw::ScenarioSpec height_first;
  height_first.set("stack_channel_height_um", 800.0);
  height_first.set("die_count", 2.0);
  sw::ScenarioSpec dies_first;
  dies_first.set("die_count", 2.0);
  dies_first.set("stack_channel_height_um", 800.0);
  const co::SystemConfig a = sw::apply_scenario(base, height_first);
  const co::SystemConfig b = sw::apply_scenario(base, dies_first);
  EXPECT_TRUE(a.stack == b.stack);
  for (const brightsi::thermal::MicrochannelLayerSpec* channel : a.stack.channel_layers()) {
    EXPECT_DOUBLE_EQ(channel->layer_height_m, 800e-6);
  }
  // The bottom cooling layer is the flow cell: the etch depth drives the
  // electrochemical channel model too.
  EXPECT_DOUBLE_EQ(a.array_spec.geometry.channel_height_m, 800e-6);
  EXPECT_DOUBLE_EQ(b.array_spec.geometry.channel_height_m, 800e-6);

  // stack_layers=1 must survive a later rebuild (bulk layers are matched
  // positionally, not by z_cells > 1).
  sw::ScenarioSpec coarse;
  coarse.set("die_count", 2.0);
  coarse.set("stack_layers", 1.0);
  coarse.set("interlayer", 0.0);
  const co::SystemConfig c = sw::apply_scenario(base, coarse);
  EXPECT_EQ(c.stack.channel_layer_count(), 1);  // interlayer=0 honored
  int bulk_layers = 0;
  for (const auto& layer : c.stack.layers) {
    if (const auto* solid = std::get_if<brightsi::thermal::SolidLayerSpec>(&layer)) {
      if (!solid->has_heat_source && solid->name != "cap_si") {
        EXPECT_EQ(solid->z_cells, 1) << solid->name;
        ++bulk_layers;
      }
    }
  }
  EXPECT_EQ(bulk_layers, 2);

  // interlayer=0 set BEFORE die_count (the README's `--set interlayer=0
  // --grid die_count=...` shape: common overrides precede grid axes) must
  // not be lost to the unrepresentable single-die intermediate state.
  sw::ScenarioSpec interlayer_first;
  interlayer_first.set("interlayer", 0.0);
  interlayer_first.set("die_count", 3.0);
  const co::SystemConfig d = sw::apply_scenario(base, interlayer_first);
  EXPECT_EQ(d.stack.source_layer_count(), 3);
  EXPECT_EQ(d.stack.channel_layer_count(), 1);
}

TEST(ScenarioSpec, PowerScaleCoversStackedDiesInEitherOrder) {
  const co::SystemConfig base = co::power7_system_config();
  const brightsi::chip::Power7PowerSpec preset = brightsi::chip::memory_die_power_spec();
  for (const bool scale_first : {false, true}) {
    sw::ScenarioSpec scenario;
    if (scale_first) {
      // The custom CLI's shape: --set power_scale=2 lands before the
      // --grid die_count axis.
      scenario.set("power_scale", 2.0);
      scenario.set("die_count", 2.0);
    } else {
      scenario.set("die_count", 2.0);
      scenario.set("power_scale", 2.0);
    }
    const co::SystemConfig scaled = sw::apply_scenario(base, scenario);
    ASSERT_EQ(scaled.upper_die_power.size(), 1u) << "scale_first=" << scale_first;
    EXPECT_DOUBLE_EQ(scaled.upper_die_power[0].core_w_per_cm2, 2.0 * preset.core_w_per_cm2)
        << "scale_first=" << scale_first;
    EXPECT_DOUBLE_EQ(scaled.power_spec.core_w_per_cm2,
                     2.0 * base.power_spec.core_w_per_cm2);
  }
}

TEST(SweepRegistry, VrmPlanReproducesTheEdgeVsDistributedShape) {
  const sw::SweepPlan plan = sw::make_registered_plan("ablation_vrm_placement");
  const sw::SweepResult result = sw::SweepRunner({4}).run(plan);
  ASSERT_EQ(result.failure_count(), 0);
  // distributed 4x4 (row 3) vs edge-fed 8/side (row 7): equal tap count,
  // distributed wins on min rail voltage — the paper's argument.
  const double distributed_min = result.rows[3].metrics[1];
  const double edge_min = result.rows[7].metrics[1];
  EXPECT_DOUBLE_EQ(result.rows[3].metrics[0], 16.0);
  EXPECT_DOUBLE_EQ(result.rows[7].metrics[0], 16.0);
  EXPECT_GT(distributed_min, edge_min);
}

TEST(SweepCache, ThermalModelReusedAcrossOperatingPoints) {
  const co::SystemConfig base = co::power7_system_config();
  sw::ThermalModelCache cache;

  sw::ScenarioSpec fast_flow;
  fast_flow.set("flow_ml_min", 676.0);
  sw::ScenarioSpec slow_flow;
  slow_flow.set("flow_ml_min", 48.0);
  sw::ScenarioSpec finer_grid;
  finer_grid.set("axial_cells", 6.0);

  const auto first = cache.model_for(sw::apply_scenario(base, fast_flow), fast_flow);
  const auto second = cache.model_for(sw::apply_scenario(base, slow_flow), slow_flow);
  EXPECT_EQ(first.get(), second.get());  // operating-point change: cache hit
  EXPECT_EQ(cache.build_count(), 1);

  const auto third = cache.model_for(sw::apply_scenario(base, finer_grid), finer_grid);
  EXPECT_NE(first.get(), third.get());  // structural change: rebuild
  EXPECT_EQ(third->ny(), 6);
  EXPECT_EQ(cache.build_count(), 2);

  sw::ThermalModelCache disabled(false);
  const auto a = disabled.model_for(sw::apply_scenario(base, fast_flow), fast_flow);
  const auto b = disabled.model_for(sw::apply_scenario(base, fast_flow), fast_flow);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(disabled.build_count(), 2);
}

TEST(SweepCache, CachedAndUncachedRowsByteIdenticalAtAnyThreadCount) {
  // The acceptance bar of the structure cache: rows must be byte-identical
  // with reuse on and off, serial and parallel. The plan mixes structural
  // (axial_cells) and operating-point (flow, inlet) axes so both cache
  // hits and rebuilds occur mid-sweep.
  sw::SweepPlan plan;
  plan.name = "cache_crosscheck";
  plan.base = co::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;
  plan.evaluator = sw::cosim_evaluator();
  plan.add_grid({{"axial_cells", {6.0, 8.0}},
                 {"flow_ml_min", {200.0, 676.0}},
                 {"inlet_c", {27.0, 37.0}}});
  ASSERT_EQ(plan.scenarios.size(), 8u);

  sw::SweepOptions cached_serial{1, true};
  sw::SweepOptions uncached_serial{1, false};
  sw::SweepOptions cached_parallel{4, true};
  sw::SweepOptions uncached_parallel{4, false};

  const std::string reference = csv_of(sw::SweepRunner(uncached_serial).run(plan));
  EXPECT_EQ(csv_of(sw::SweepRunner(cached_serial).run(plan)), reference);
  EXPECT_EQ(csv_of(sw::SweepRunner(cached_parallel).run(plan)), reference);
  EXPECT_EQ(csv_of(sw::SweepRunner(uncached_parallel).run(plan)), reference);

  const sw::SweepResult cached = sw::SweepRunner(cached_serial).run(plan);
  EXPECT_EQ(cached.failure_count(), 0);
  EXPECT_EQ(json_of(cached), json_of(sw::SweepRunner(uncached_serial).run(plan)));
}

TEST(SweepMission, EnduranceRowsByteIdenticalAcrossThreadCounts) {
  // The mission/endurance acceptance bar: transient missions through the
  // sweep engine stay byte-identical at 1 and 4 threads. Trimmed to the
  // first 6 scenarios (both workload kinds, both dt values, including the
  // non-divisible 0.07 s step) to keep the suite quick.
  sw::SweepPlan plan = sw::make_registered_plan("mission_endurance");
  ASSERT_EQ(plan.scenarios.size(), 16u);
  plan.scenarios.resize(6);
  const sw::SweepResult serial = sw::SweepRunner({1}).run(plan);
  const sw::SweepResult parallel = sw::SweepRunner({4}).run(plan);
  ASSERT_EQ(serial.failure_count(), 0);
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(json_of(serial), json_of(parallel));

  // Sanity on the rows themselves: steps > 0, the tanks drained, the
  // supply held on the nominal platform.
  ASSERT_EQ(serial.metric_names.front(), "steps");
  for (const sw::ScenarioResult& row : serial.rows) {
    EXPECT_GT(row.metrics[0], 0.0) << row.name;       // steps
    EXPECT_LT(row.metrics[1], 0.95) << row.name;      // final_soc below initial
    EXPECT_GT(row.metrics[3], 0.0) << row.name;       // energy delivered
    EXPECT_DOUBLE_EQ(row.metrics[5], 1.0) << row.name;  // supply_ok
  }
}

TEST(SweepMission, RomRowsByteIdenticalAcrossThreadCounts) {
  // The reduced-order backend through the sweep engine: stamping
  // transient=1 onto endurance scenarios (what `brightsi_sweep --transient
  // rom` does) must keep rows byte-identical at 1 and 4 threads — each
  // ReducedThermalModel is private to its engine, never shared across
  // workers, so thread count cannot leak into the certificate trail.
  sw::SweepPlan plan = sw::make_registered_plan("mission_endurance");
  plan.scenarios.resize(3);
  for (sw::ScenarioSpec& scenario : plan.scenarios) {
    scenario.set("transient", 1.0);
  }
  const sw::SweepResult serial = sw::SweepRunner({1}).run(plan);
  const sw::SweepResult parallel = sw::SweepRunner({4}).run(plan);
  ASSERT_EQ(serial.failure_count(), 0);
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(json_of(serial), json_of(parallel));
  for (const sw::ScenarioResult& row : serial.rows) {
    EXPECT_GT(row.metrics[0], 0.0) << row.name;   // steps
    EXPECT_LT(row.metrics[1], 0.95) << row.name;  // final_soc below initial
  }
}

TEST(SweepMission, EvaluatorReusesTheWorkerThermalModel) {
  sw::SweepPlan plan = sw::make_registered_plan("mission_endurance");
  plan.scenarios.resize(2);  // same thermal structure, different tanks
  sw::WorkerState worker;
  const sw::SweepEvaluator evaluator = sw::mission_evaluator();
  for (const sw::ScenarioSpec& scenario : plan.scenarios) {
    const co::SystemConfig config = sw::apply_scenario(plan.base, scenario);
    (void)evaluator.fn(config, scenario, worker);
  }
  EXPECT_EQ(worker.thermal_models.build_count(), 1);
}

TEST(SweepCache, MissionTrajectoryCacheBasics) {
  sw::MissionTrajectoryCache cache(true);
  EXPECT_EQ(cache.find("k"), nullptr);
  EXPECT_EQ(cache.hit_count(), 0);

  brightsi::core::MissionThermalTrajectory trajectory;
  trajectory.engine_steps = 42;
  cache.insert("k", trajectory);
  ASSERT_NE(cache.find("k"), nullptr);
  EXPECT_EQ(cache.find("k")->engine_steps, 42);
  EXPECT_EQ(cache.hit_count(), 2);  // only successful lookups count
  EXPECT_EQ(cache.find("other"), nullptr);
  EXPECT_EQ(cache.size(), 1u);

  // Disabled (--no-reuse): inserts are dropped, lookups always miss.
  sw::MissionTrajectoryCache disabled(false);
  disabled.insert("k", trajectory);
  EXPECT_EQ(disabled.find("k"), nullptr);
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_EQ(disabled.hit_count(), 0);
}

TEST(SweepMission, TrajectorySharedAcrossTankSizes) {
  // mission_endurance expands tank_ml as the outermost axis, so rows 0 and
  // 8 are the same mission under different tank volumes: the thermal
  // trajectory recorded for row 0 must replay for row 8 (no second
  // transient solve), with bitwise-equal thermal metrics and different
  // electrochemical ones.
  sw::SweepPlan plan = sw::make_registered_plan("mission_endurance");
  ASSERT_EQ(plan.scenarios[0].get("tank_ml"), 2.0);
  ASSERT_EQ(plan.scenarios[8].get("tank_ml"), 20.0);

  sw::WorkerState worker;
  const sw::SweepEvaluator evaluator = sw::mission_evaluator();
  std::vector<std::vector<double>> metrics;
  for (const std::size_t index : {std::size_t{0}, std::size_t{8}}) {
    const sw::ScenarioSpec& scenario = plan.scenarios[index];
    const co::SystemConfig config = sw::apply_scenario(plan.base, scenario);
    metrics.push_back(evaluator.fn(config, scenario, worker));
  }
  EXPECT_EQ(worker.mission_trajectories.hit_count(), 1);
  EXPECT_EQ(worker.thermal_models.build_count(), 1);
  // metrics: {steps, final_soc, soc_drop, energy_j, max_peak_c, ...}
  EXPECT_EQ(metrics[0][0], metrics[1][0]);  // identical step count
  EXPECT_EQ(metrics[0][4], metrics[1][4]);  // bitwise-equal peak temperature
  EXPECT_NE(metrics[0][1], metrics[1][1]);  // a 10x tank drains differently
}

TEST(SweepMission, TrajectoryReplayedRowsByteIdenticalWithAndWithoutReuse) {
  // The trajectory cache's acceptance bar: a replayed mission row must be
  // byte-identical to a freshly solved one, serial and parallel. The four
  // scenarios form two (dt, operating-point) pairs that differ only in
  // tank size, so the cached run replays half its rows.
  sw::SweepPlan plan = sw::make_registered_plan("mission_endurance");
  sw::SweepPlan trimmed = plan;
  trimmed.scenarios = {plan.scenarios[0], plan.scenarios[1], plan.scenarios[8],
                       plan.scenarios[9]};

  const std::string reference = csv_of(sw::SweepRunner({1, false}).run(trimmed));
  EXPECT_EQ(csv_of(sw::SweepRunner({1, true}).run(trimmed)), reference);
  EXPECT_EQ(csv_of(sw::SweepRunner({4, true}).run(trimmed)), reference);
}

TEST(SweepCsv, QuotesCellsWithCommas) {
  sw::SweepPlan plan;
  plan.name = "quoting";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::array_power_evaluator();
  sw::ScenarioSpec scenario;
  scenario.name = "a, \"quoted\" name";
  plan.add(scenario);
  const sw::SweepResult result = sw::SweepRunner({1}).run(plan);
  const std::string csv = csv_of(result);
  EXPECT_NE(csv.find("\"a, \"\"quoted\"\" name\""), std::string::npos) << csv;
}

}  // namespace
