// Mission endurance: run the integrated POWER7+ through a bursty workload
// while tracking die temperature, bus operating point and the electrolyte
// state of charge — the full system answer to "how long does the
// flow-battery loop carry the cache rail?".
//
//   $ ./mission_endurance [tank_milliliters_per_side]
//
// Small tanks (try 2) drain visibly within the run; liter-class tanks are
// flat over any interactive timescale (see bench/ablation_soc for hours).
#include <cstdio>
#include <cstdlib>

#include "core/mission.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;

int main(int argc, char** argv) {
  const double tank_ml = (argc > 1) ? std::atof(argv[1]) : 5.0;

  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 16;
  config.workload = ch::burst_trace(2);
  config.reservoir.tank_volume_m3 = tank_ml * 1e-6;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.initial_soc = 0.95;
  config.dt_s = 0.1;

  std::printf("mission: 2x (idle | burst | sustain), %.1f mL tanks per side, SOC0 = %.2f\n\n",
              tank_ml, config.initial_soc);

  const co::MissionResult result = co::run_mission(config);

  std::printf("   t (s)  phase      peak (C)  outlet (C)   SOC    bus V   bus A  supply\n");
  int printed = 0;
  for (const auto& s : result.samples) {
    if (++printed % 3 != 0) {
      continue;  // thin the printout
    }
    std::printf("  %6.1f  %-9s  %8.2f  %10.2f  %5.3f  %6.3f  %6.2f  %s\n", s.time_s,
                s.phase.c_str(), s.peak_temperature_c, s.mean_outlet_c, s.state_of_charge,
                s.bus_voltage_v, s.bus_current_a, s.supply_ok ? "ok" : "FAIL");
  }

  std::printf("\nmission summary: final SOC %.3f, max peak %.1f C, %.1f J delivered, supply %s\n",
              result.final_soc, result.max_peak_temperature_c, result.energy_delivered_j,
              result.supply_always_ok ? "held throughout" : "FAILED at least once");
  return 0;
}
