// Mission endurance: run the integrated POWER7+ through a bursty workload
// while tracking die temperature, bus operating point and the electrolyte
// state of charge — the full system answer to "how long does the
// flow-battery loop carry the cache rail?".
//
//   $ ./mission_endurance [tank_milliliters_per_side]
//
// Small tanks (try 2) drain visibly within the run; liter-class tanks are
// flat over any interactive timescale (see bench/ablation_soc for hours).
// The second leg resumes from the first leg's thermal + SOC checkpoint —
// round-tripped through a mission checkpoint file (the shared versioned
// binary framing of core/binfile.h), so a resumed mission can cross a
// process boundary.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/mission.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;

namespace {

void print_samples(const co::MissionResult& result) {
  for (const auto& s : result.samples) {
    std::printf("  %6.1f  %-9s  %8.2f  %10.2f  %5.3f  %6.3f  %6.2f  %s\n", s.time_s,
                s.phase.c_str(), s.peak_temperature_c, s.mean_outlet_c, s.state_of_charge,
                s.bus_voltage_v, s.bus_current_a, s.supply_ok ? "ok" : "FAIL");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double tank_ml = (argc > 1) ? std::atof(argv[1]) : 5.0;

  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 16;
  config.workload = ch::burst_trace(1);
  config.reservoir.tank_volume_m3 = tank_ml * 1e-6;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.initial_soc = 0.95;
  config.dt_s = 0.1;
  config.sample_stride = 3;  // record every third step; the tail is always kept

  std::printf("mission: 2x (idle | burst | sustain), %.1f mL tanks per side, SOC0 = %.2f\n\n",
              tank_ml, config.initial_soc);

  std::printf("   t (s)  phase      peak (C)  outlet (C)   SOC    bus V   bus A  supply\n");
  const co::MissionResult leg1 = co::run_mission(config);
  print_samples(leg1);

  // Second cycle of the duty loop, resumed from the first leg's checkpoint
  // (thermal field + SOC) instead of a cold uniform start. The checkpoint
  // crosses a file round-trip: loaded values are bitwise the saved ones,
  // so leg 2 is byte-identical to an in-process handoff.
  const char* checkpoint_path = "mission_endurance.ckpt";
  co::save_mission_checkpoint(checkpoint_path, leg1.final_state, leg1.final_soc);
  const co::MissionCheckpoint checkpoint = co::load_mission_checkpoint(checkpoint_path);
  std::remove(checkpoint_path);

  co::MissionConfig leg2_config = config;
  leg2_config.initial_soc = checkpoint.soc;
  const co::MissionResult leg2 = co::run_mission(leg2_config, nullptr, &checkpoint.state);
  print_samples(leg2);

  const double energy_j = leg1.energy_delivered_j + leg2.energy_delivered_j;
  const double max_peak_c =
      std::max(leg1.max_peak_temperature_c, leg2.max_peak_temperature_c);
  const bool supply_ok = leg1.supply_always_ok && leg2.supply_always_ok;
  std::printf("\nmission summary: final SOC %.3f, max peak %.1f C, %.1f J delivered, supply %s\n",
              leg2.final_soc, max_peak_c, energy_j,
              supply_ok ? "held throughout" : "FAILED at least once");
  std::printf("(%lld thermal steps; thermal %.0f ms assembly + %.0f ms solve)\n",
              leg1.steps + leg2.steps,
              1e3 * (leg1.thermal_assembly_time_s + leg2.thermal_assembly_time_s),
              1e3 * (leg1.thermal_solve_time_s + leg2.thermal_solve_time_s));
  return 0;
}
