// Outlook study (paper Section IV): "to allow a full electrochemical power
// supply of chip stacks ... (1) the power density of processors has to be
// reduced ... and (2) the power density of electrochemical power delivery
// has to be massively improved."
//
//   $ ./full_chip_roadmap
//
// Quantifies that two-pronged roadmap with the models in this repo: for a
// grid of (chip-power reduction) x (cell power-density improvement)
// points, what fraction of the POWER7+ can the integrated array supply?
#include <cstdio>
#include <iostream>

#include "chip/power7.h"
#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace ch = brightsi::chip;
using brightsi::core::TextTable;

namespace {

/// Array deliverable power at a 1 V bus for a cell improved by `factor`
/// (modeled as a proportional cut of the ohmic/kinetic losses: series
/// resistance / factor, exchange currents * factor).
double improved_array_power(double factor) {
  auto spec = fc::power7_array_spec();
  spec.geometry.series_resistance_ohm_m2 /= factor;
  auto chem = ec::power7_array_chemistry();
  chem.anode.kinetic_rate_m_per_s.reference_value *= factor;
  chem.cathode.kinetic_rate_m_per_s.reference_value *= factor;
  const fc::FlowCellArray array(spec, chem);
  return array.current_at_voltage(1.0) * 1.0;
}

}  // namespace

int main() {
  const auto floorplan = ch::make_power7_floorplan();
  const double vrm_efficiency = 0.86;

  std::printf("=== full-chip electrochemical supply roadmap (paper Section IV) ===\n\n");
  std::printf("POWER7+ at full load: %.1f W total, %.1f W caches (today's rail)\n\n",
              floorplan.total_power(), floorplan.cache_power());

  TextTable table({"cell improvement", "array W @1V", "% of today's chip",
                   "% of chip at 1/2 power", "% of chip at 1/4 power"});
  const double chip = floorplan.total_power() / vrm_efficiency;  // bus-side demand
  for (const double factor : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double watts = improved_array_power(factor);
    auto pct = [&](double demand) {
      return TextTable::num(std::min(100.0, watts / demand * 100.0), 0);
    };
    table.add_row({TextTable::num(factor, 0) + "x", TextTable::num(watts, 1), pct(chip),
                   pct(chip / 2.0), pct(chip / 4.0)});
  }
  table.print(std::cout);

  std::printf(
      "\nreading: today's cell covers the caches (~9%% of the chip). A ~8x cell\n"
      "improvement combined with a 4x leaner architecture (the paper's prong 1:\n"
      "specialization, less data motion) reaches full-chip supply — the paper's\n"
      "'bright silicon' end state. Cooling is already sufficient at today's\n"
      "densities (see fig9_thermal_map).\n");
  return 0;
}
