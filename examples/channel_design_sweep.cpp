// Design-space exploration: a engineer sizing the microchannel array for a
// target supply current and temperature limit.
//
//   $ ./channel_design_sweep [target_current_A] [max_peak_C]
//
// Sweeps channel width and flow rate, runs the supply model and the
// thermal model for each candidate, and prints the feasible designs with
// their pumping cost so the knee of the trade-off is visible.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "chip/power7.h"
#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "hydraulics/pump.h"
#include "thermal/model.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace hy = brightsi::hydraulics;
namespace th = brightsi::thermal;
namespace ch = brightsi::chip;
using brightsi::core::TextTable;

namespace {

struct Candidate {
  double channel_width_um;
  double flow_ml_min;
};

struct Evaluation {
  double current_a = 0.0;
  double peak_c = 0.0;
  double pump_w = 0.0;
  bool feasible = false;
};

Evaluation evaluate(const Candidate& c, double target_current, double max_peak_c) {
  // Keep the 300 um pitch: fewer, wider channels or more, narrower ones.
  const double pitch = 300e-6;
  const int channels = static_cast<int>((ch::kPower7DieWidthM - 150e-6) / pitch);

  auto spec = fc::power7_array_spec();
  spec.channel_count = channels;
  spec.geometry.electrode_gap_m = c.channel_width_um * 1e-6;
  spec.total_flow_m3_per_s = c.flow_ml_min * 1e-6 / 60.0;
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());

  Evaluation eval;
  eval.current_a = array.current_at_voltage(1.0);
  const auto h = array.hydraulics_at_spec_flow();
  eval.pump_w = hy::pumping_power_w(h.pressure_drop_pa, spec.total_flow_m3_per_s, 0.5);

  // Thermal check with the matching channel layer.
  auto stack = th::power7_microchannel_stack();
  th::MicrochannelLayerSpec* channel_layer = stack.bottom_channel_layer();
  channel_layer->channel_count = channels;
  channel_layer->channel_width_m = c.channel_width_um * 1e-6;
  channel_layer->interior_wall_width_m = pitch - c.channel_width_um * 1e-6;
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 8;
  const th::ThermalModel model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM, grid);
  th::OperatingPoint op;
  op.total_flow_m3_per_s = spec.total_flow_m3_per_s;
  op.inlet_temperature_k = 300.15;
  const auto sol = model.solve_steady(ch::make_power7_floorplan(), op);
  eval.peak_c = sol.peak_temperature_k - 273.15;

  eval.feasible = eval.current_a >= target_current && eval.peak_c <= max_peak_c;
  return eval;
}

}  // namespace

int main(int argc, char** argv) {
  const double target_current = (argc > 1) ? std::atof(argv[1]) : 6.0;
  const double max_peak_c = (argc > 2) ? std::atof(argv[2]) : 45.0;

  std::printf("design sweep: target >= %.1f A at 1 V, peak <= %.0f C\n\n", target_current,
              max_peak_c);

  TextTable table({"width (um)", "flow (ml/min)", "I@1V (A)", "peak (C)", "pump (W)",
                   "feasible"});
  for (const double width : {100.0, 150.0, 200.0, 250.0}) {
    for (const double flow : {200.0, 450.0, 676.0, 1200.0}) {
      const auto eval = evaluate({width, flow}, target_current, max_peak_c);
      table.add_row({TextTable::num(width, 0), TextTable::num(flow, 0),
                     TextTable::num(eval.current_a, 2), TextTable::num(eval.peak_c, 1),
                     TextTable::num(eval.pump_w, 2), eval.feasible ? "yes" : "-"});
    }
  }
  table.print(std::cout);
  std::printf("\npick the feasible row with the smallest pumping power.\n");
  return 0;
}
