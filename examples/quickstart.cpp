// Quickstart: build a single co-laminar vanadium flow cell, sweep its
// polarization curve and find the maximum power point.
//
//   $ ./quickstart
//
// Walks through the three core concepts of the library: a CellGeometry, a
// FlowCellChemistry, and a ChannelModel you can query at any cell voltage.
#include <cstdio>

#include "electrochem/nernst.h"
#include "electrochem/vanadium.h"
#include "flowcell/channel_model.h"
#include "flowcell/polarization.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;

int main() {
  // 1. Geometry: the paper's validation cell (Kjeang 2007; Table I) — a
  //    33 mm x 2 mm x 150 um channel with planar wall electrodes.
  const fc::CellGeometry geometry = fc::kjeang2007_geometry();

  // 2. Chemistry: the all-vanadium couples with Table I concentrations,
  //    kinetics and diffusivities (plus temperature laws).
  const ec::FlowCellChemistry chemistry = ec::kjeang2007_validation_chemistry();

  // 3. Model: the factory picks the transport model that matches the
  //    electrode construction (here: the co-laminar marching FVM).
  const auto model = fc::make_channel_model(geometry, chemistry);

  // Operating conditions: 60 uL/min of combined electrolyte flow at 27 C.
  fc::ChannelOperatingConditions conditions;
  conditions.volumetric_flow_m3_per_s = 60e-9 / 60.0;
  conditions.inlet_temperature_k = 300.0;

  std::printf("open-circuit voltage: %.3f V\n", model->open_circuit_voltage(conditions));

  // Single-point query...
  const fc::ChannelSolution at_1v = model->solve_at_voltage(1.0, conditions);
  std::printf("at 1.0 V: %.2f mA (%.1f mA/cm2), fuel utilization %.1f %%\n",
              at_1v.current_a * 1e3, at_1v.mean_current_density_a_per_m2 / 10.0,
              at_1v.fuel_utilization * 100.0);

  // ...or a full polarization sweep.
  const fc::PolarizationCurve curve = fc::sweep_polarization(*model, conditions, 0.3, 15);
  std::printf("\n  V (V)   I (mA)   P (mW)\n");
  for (const auto& point : curve.points()) {
    std::printf("  %5.3f   %6.3f   %6.3f\n", point.cell_voltage_v, point.current_a * 1e3,
                point.power_w * 1e3);
  }

  const auto mpp = curve.max_power_point();
  std::printf("\nmaximum power point: %.2f mW at %.2f V\n", mpp.power_w * 1e3,
              mpp.cell_voltage_v);
  return 0;
}
