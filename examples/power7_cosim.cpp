// The paper's full case study in one run: the IBM POWER7+ with an
// integrated 88-channel microfluidic fuel-cell array that simultaneously
// powers the L2/L3 cache rail and cools the whole die.
//
//   $ ./power7_cosim
//
// Prints the complete co-simulation report: thermal map, supply operating
// point, cache-rail IR-drop window, hydraulics and the energy balance.
#include <cstdio>
#include <iostream>

#include "core/cosim.h"
#include "core/report.h"
#include "core/system_config.h"

namespace co = brightsi::core;
using co::TextTable;

int main() {
  // The paper's configuration (Tables I/II, Fig. 8 calibration) is one
  // call away; every knob can be edited before constructing the system.
  co::SystemConfig config = co::power7_system_config();

  co::IntegratedMpsocSystem system(config);
  const co::CoSimReport report = system.run();

  std::printf("=== integrated microfluidic POWER7+ co-simulation ===\n");
  std::printf("converged in %d iteration(s)\n\n", report.iterations);

  TextTable summary({"quantity", "value", "unit"});
  summary.add_row({"chip power", TextTable::num(system.floorplan().total_power(), 1), "W"});
  summary.add_row({"peak die temperature", TextTable::num(report.peak_temperature_c, 1), "C"});
  summary.add_row({"mean coolant outlet", TextTable::num(report.mean_coolant_outlet_c, 1), "C"});
  summary.add_row({"flow-cell bus voltage", TextTable::num(report.supply.bus_voltage_v, 3), "V"});
  summary.add_row({"array current", TextTable::num(report.supply.array_current_a, 2), "A"});
  summary.add_row({"array power", TextTable::num(report.supply.array_power_w, 2), "W"});
  summary.add_row({"cache rail power", TextTable::num(report.supply.vrm_output_power_w, 2), "W"});
  summary.add_row({"VRM loss", TextTable::num(report.supply.vrm_loss_w, 2), "W"});
  summary.add_row({"rail voltage window",
                   TextTable::num(report.grid.min_voltage_v, 3) + " - " +
                       TextTable::num(report.grid.max_voltage_v, 3),
                   "V"});
  summary.add_row({"channel pressure drop", TextTable::num(report.pressure_drop_bar, 3), "bar"});
  summary.add_row({"pumping power", TextTable::num(report.pumping_power_w, 2), "W"});
  summary.add_row({"net electrical gain", TextTable::num(report.net_power_w, 2), "W"});
  summary.add_row({"thermal current gain", TextTable::num(report.thermal_current_gain * 100, 2),
                   "%"});
  summary.print(std::cout);

  std::printf("\nsupply feasible: %s, VRM input window: %s\n",
              report.supply.feasible ? "yes" : "NO",
              report.supply.vrm_window_ok ? "ok" : "VIOLATED");

  // Die temperature map (same field Fig. 9 plots).
  auto map_c = report.thermal.source_layer_map_k();
  for (double& v : map_c.data()) {
    v -= 273.15;
  }
  std::printf("\n");
  co::print_ascii_map(std::cout, map_c, "die temperature (C)", "C");

  // Cache-rail voltage map (same field Fig. 8 plots).
  std::printf("\n");
  co::print_ascii_map(std::cout, report.grid.node_voltage_v, "cache-rail voltage (V)", "V");
  return 0;
}
