// Transient workload study: step the chip through idle -> burst -> sustain
// power phases and watch the die temperature and the flow-cell output
// respond over time; a simple governor throttles the cores if the die
// crosses its limit (it never does with the microfluidic package at
// nominal flow — that is the point of the paper).
//
//   $ ./transient_throttling [flow_ml_min]
//
// Try 48 ml/min to see the hot-coolant regime and the governor engaging.
#include <cstdio>
#include <cstdlib>

#include "chip/power7.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "thermal/model.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

namespace {

struct Phase {
  const char* name;
  double core_activity;
  double duration_s;
};

}  // namespace

int main(int argc, char** argv) {
  const double flow_ml_min = (argc > 1) ? std::atof(argv[1]) : 676.0;
  constexpr double kTempLimitC = 80.0;
  constexpr double kDt = 0.05;

  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 16;
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, grid);
  th::OperatingPoint op;
  op.total_flow_m3_per_s = flow_ml_min * 1e-6 / 60.0;
  op.inlet_temperature_k = 300.15;

  auto spec = fc::power7_array_spec();
  spec.total_flow_m3_per_s = op.total_flow_m3_per_s;
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());

  const Phase phases[] = {
      {"idle", 0.15, 0.6},
      {"burst", 1.0, 1.2},
      {"sustain", 0.7, 1.2},
      {"idle", 0.15, 0.6},
  };

  std::printf("transient at %.0f ml/min, dt = %.0f ms, throttle at %.0f C\n\n", flow_ml_min,
              kDt * 1e3, kTempLimitC);
  std::printf("   t (s)  phase     activity  peak (C)  outlet (C)  I@1V (A)  throttled\n");

  auto state = model.uniform_state(op.inlet_temperature_k);
  double time = 0.0;
  double throttle = 1.0;
  for (const Phase& phase : phases) {
    for (double elapsed = 0.0; elapsed < phase.duration_s; elapsed += kDt) {
      ch::Power7PowerSpec power;
      power.core_w_per_cm2 *= phase.core_activity * throttle;
      const auto floorplan = ch::make_power7_floorplan(power);

      const auto sol = model.step_transient(state, floorplan, op, kDt);
      state = sol.temperature_k;
      const double peak_c = sol.peak_temperature_k - 273.15;

      // Governor: pull activity down 10 % per step above the limit, relax
      // back when comfortably below.
      if (peak_c > kTempLimitC) {
        throttle = std::max(0.1, throttle * 0.9);
      } else if (peak_c < kTempLimitC - 10.0 && throttle < 1.0) {
        throttle = std::min(1.0, throttle * 1.05);
      }

      // Flow-cell output under the mean outlet temperature of this step.
      double outlet_mean = 0.0;
      for (const double t : sol.channel_outlet_k) {
        outlet_mean += t;
      }
      outlet_mean /= static_cast<double>(sol.channel_outlet_k.size());
      const double current = array.current_at_voltage(
          1.0, {op.inlet_temperature_k, (op.inlet_temperature_k + outlet_mean) / 2.0,
                outlet_mean});

      time += kDt;
      if (static_cast<int>(time / kDt) % 4 == 0) {
        std::printf("  %6.2f  %-8s  %8.2f  %8.2f  %10.2f  %8.2f  %s\n", time, phase.name,
                    phase.core_activity * throttle, peak_c, outlet_mean - 273.15, current,
                    throttle < 1.0 ? "yes" : "-");
      }
    }
  }
  std::printf("\ndone; with the nominal 676 ml/min flow the governor never engages.\n");
  return 0;
}
