// Transient workload study: step the chip through idle -> burst -> sustain
// power phases and watch the die temperature and the flow-cell output
// respond over time; a simple governor throttles the cores if the die
// crosses its limit (it never does with the microfluidic package at
// nominal flow — that is the point of the paper).
//
// Driven by the shared transient engine (thermal/transient.h): the
// governor rides the engine's floorplan hook, and the phase-aligned
// schedule covers the whole trace even when dt does not divide a phase.
//
//   $ ./transient_throttling [flow_ml_min]
//
// Try 48 ml/min to see the hot-coolant regime and the governor engaging.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "chip/power7.h"
#include "chip/workload.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "thermal/transient.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

int main(int argc, char** argv) {
  const double flow_ml_min = (argc > 1) ? std::atof(argv[1]) : 676.0;
  constexpr double kTempLimitC = 80.0;
  constexpr double kDt = 0.05;

  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 16;
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, grid);
  th::OperatingPoint op;
  op.total_flow_m3_per_s = flow_ml_min * 1e-6 / 60.0;
  op.inlet_temperature_k = 300.15;

  auto spec = fc::power7_array_spec();
  spec.total_flow_m3_per_s = op.total_flow_m3_per_s;
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());

  // Only the core activity varies across phases; the rest of the chip is
  // held at spec (matching the governor's DVFS-on-compute model).
  const ch::WorkloadTrace trace({
      {"idle", 0.6, 0.15, 1.0, 1.0, 1.0},
      {"burst", 1.2, 1.0, 1.0, 1.0, 1.0},
      {"sustain", 1.2, 0.7, 1.0, 1.0, 1.0},
      {"idle", 0.6, 0.15, 1.0, 1.0, 1.0},
  });

  std::printf("transient at %.0f ml/min, dt = %.0f ms, throttle at %.0f C\n\n", flow_ml_min,
              kDt * 1e3, kTempLimitC);
  std::printf("   t (s)  phase     activity  peak (C)  outlet (C)  I@1V (A)  throttled\n");

  th::TransientEngineOptions options;
  options.schedule.dt_s = kDt;
  th::TransientEngine engine(model, op, options);

  double throttle = 1.0;
  const ch::Power7PowerSpec power_spec;
  engine.run(
      trace,
      [&](const ch::WorkloadPhase& phase, const th::TransientStep&) {
        // Governor hook: the workload asks for phase.core_activity, the
        // governor grants phase.core_activity * throttle.
        ch::WorkloadPhase granted = phase;
        granted.core_activity *= throttle;
        return ch::apply_phase(power_spec, granted);
      },
      [&](const th::TransientEngine::StepView& view) {
        const double peak_c = view.solution.peak_temperature_k - 273.15;

        // Governor: pull activity down 10 % per step above the limit, relax
        // back when comfortably below.
        if (peak_c > kTempLimitC) {
          throttle = std::max(0.1, throttle * 0.9);
        } else if (peak_c < kTempLimitC - 10.0 && throttle < 1.0) {
          throttle = std::min(1.0, throttle * 1.05);
        }

        // Flow-cell output under the mean outlet temperature of this step.
        const double outlet_mean = view.mean_outlet_k;
        const double current = array.current_at_voltage(
            1.0, {op.inlet_temperature_k, (op.inlet_temperature_k + outlet_mean) / 2.0,
                  outlet_mean});

        if ((view.step.index + 1) % 4 == 0) {
          std::printf("  %6.2f  %-8s  %8.2f  %8.2f  %10.2f  %8.2f  %s\n", view.step.t_end_s,
                      view.phase.name.c_str(), view.phase.core_activity * throttle, peak_c,
                      outlet_mean - 273.15, current, throttle < 1.0 ? "yes" : "-");
        }
      });

  std::printf("\ndone; with the nominal 676 ml/min flow the governor never engages.\n");
  return 0;
}
