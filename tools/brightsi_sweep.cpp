// brightsi_sweep — run design-space sweeps of the integrated microfluidic
// power/cooling system on every core.
//
//   brightsi_sweep --list                      registered plans
//   brightsi_sweep --params                    sweepable parameters
//   brightsi_sweep <plan> [options]            run a registered plan
//   brightsi_sweep custom --evaluator <name>
//       --grid p=v1,v2,... [--grid ...] [--set p=v ...]   ad-hoc sweep
//       (evaluators: cosim, array, array_thermal, rail, mission, stack,
//        fleet, fleet_replay)
//
// Options:
//   --threads N     worker threads (default: hardware concurrency)
//   --csv FILE      write result rows (FILE may be '-' for stdout)
//   --json FILE     write result records as JSON
//   --timing FILE   write per-scenario wall time
//   --quiet         suppress the result table on stdout
//   --no-reuse      rebuild every model from scratch per scenario (results
//                   are byte-identical with or without reuse)
//
// Distributed execution (the shard backend, sweep/execution.h):
//   --store DIR     content-addressed result store; rows already stored
//                   are reused, fresh rows are appended per-row (resume)
//   --shard I/N     evaluate only this instance's share of the plan
//                   (requires --store; cooperating instances share DIR)
//   --limit N       stop after N fresh evaluations (kill-injection for
//                   resume tests; remaining rows stay pending)
//   --lease-timeout S   steal a peer's lease after S seconds (default 60)
//
// A partial run (some rows pending) exits nonzero; rerun, run the other
// shards, or merge with brightsi_merge --allow-missing.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/report.h"
#include "sweep/execution.h"
#include "sweep/registry.h"
#include "sweep/runner.h"
#include "cli_args.h"

namespace sw = brightsi::sweep;
using brightsi::core::TextTable;

namespace {

int usage(const char* argv0, int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: %s --list | --params\n"
               "       %s <plan> [--threads N] [--csv FILE] [--json FILE]"
               " [--timing FILE] [--quiet] [--no-reuse] [--solver ilu0|mg]"
               " [--transient full|rom] [--store DIR [--shard I/N] [--limit N]"
               " [--lease-timeout S]]\n"
               "       %s custom --evaluator cosim|array|array_thermal|rail|mission|stack"
               "|fleet|fleet_replay (--grid p=v1,v2,... | --set p=v)... [options]\n",
               argv0, argv0, argv0);
  return exit_code;
}

void list_plans() {
  TextTable table({"plan", "summary"});
  for (const sw::PlanDescription& plan : sw::registered_plans()) {
    table.add_row({plan.name, plan.summary});
  }
  table.print(std::cout);
}

void list_parameters() {
  TextTable table({"parameter", "description"});
  for (const sw::ParameterInfo& info : sw::parameter_registry()) {
    table.add_row({info.name, info.description});
  }
  table.print(std::cout);
}

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> values;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    try {
      std::size_t consumed = 0;
      values.push_back(std::stod(token, &consumed));
      if (consumed != token.size()) {
        throw std::invalid_argument(token);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("not a number: '" + token + "'");
    }
  }
  return values;
}

/// Splits "param=v1,v2,..." into an axis; throws on a missing '='.
sw::GridAxis parse_axis(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("expected param=value[,value...], got: " + text);
  }
  sw::GridAxis axis{text.substr(0, eq), parse_values(text.substr(eq + 1))};
  if (axis.values.empty()) {
    throw std::invalid_argument("no values given for parameter: " + axis.param);
  }
  return axis;
}

void print_result_table(const sw::SweepResult& result) {
  std::vector<std::string> headers = {"scenario"};
  headers.insert(headers.end(), result.metric_names.begin(), result.metric_names.end());
  TextTable table(headers);
  for (const sw::ScenarioResult& row : result.rows) {
    std::vector<std::string> cells = {row.name};
    if (row.failed) {
      for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
        cells.push_back(m == 0 ? "FAILED: " + row.error : "-");
      }
    } else {
      for (const double metric : row.metrics) {
        cells.push_back(TextTable::num(metric, 4));
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::printf("\n%zu scenarios (%d failed) in %.2f s on %d threads (%.2f scenarios/s)\n",
              result.rows.size(), result.failure_count(), result.wall_time_s,
              result.thread_count, result.scenarios_per_second());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0], 2);
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return usage(argv[0], 0);
  }
  if (command == "--list") {
    list_plans();
    return 0;
  }
  if (command == "--params") {
    list_parameters();
    return 0;
  }

  try {
    sw::SweepOptions options;
    std::string csv_path;
    std::string json_path;
    std::string timing_path;
    bool quiet = false;
    std::string evaluator_name;
    std::string solver_name;
    std::string transient_name;
    std::vector<sw::GridAxis> grid_axes;
    std::vector<std::pair<std::string, double>> fixed;
    sw::ShardOptions shard;

    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&] { return brightsi::tools::next_arg(argc, argv, i, arg); };
      if (arg == "--threads") {
        // 0 keeps the "hardware concurrency" default.
        options.thread_count = brightsi::tools::next_int_arg(argc, argv, i, arg, 0);
      } else if (arg == "--csv") {
        csv_path = next();
      } else if (arg == "--json") {
        json_path = next();
      } else if (arg == "--timing") {
        timing_path = next();
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--no-reuse") {
        options.reuse_structures = false;
      } else if (arg == "--evaluator") {
        evaluator_name = next();
      } else if (arg == "--solver") {
        solver_name = brightsi::tools::next_choice_arg(argc, argv, i, arg, {"ilu0", "mg"});
      } else if (arg == "--transient") {
        transient_name =
            brightsi::tools::next_choice_arg(argc, argv, i, arg, {"full", "rom"});
      } else if (arg == "--store") {
        shard.store_dir = next();
      } else if (arg == "--shard") {
        std::tie(shard.shard_index, shard.shard_count) =
            brightsi::tools::parse_shard_spec(arg, next());
      } else if (arg == "--limit") {
        shard.row_limit = brightsi::tools::next_int_arg(argc, argv, i, arg, 0);
      } else if (arg == "--lease-timeout") {
        const std::string value = next();
        try {
          shard.lease_timeout_s = std::stod(value);
        } catch (const std::exception&) {
          throw std::invalid_argument("--lease-timeout expects seconds, got: " + value);
        }
      } else if (arg == "--grid") {
        grid_axes.push_back(parse_axis(next()));
      } else if (arg == "--set") {
        const std::string assignment = next();
        const sw::GridAxis axis = parse_axis(assignment);
        if (axis.values.size() != 1) {
          throw std::invalid_argument("--set takes a single value: " + assignment);
        }
        fixed.emplace_back(axis.param, axis.values.front());
      } else {
        std::fprintf(stderr, "error: %s\n",
                     brightsi::tools::unknown_option_message(arg).c_str());
        return usage(argv[0], 2);
      }
    }

    sw::SweepPlan plan;
    if (command == "custom") {
      if (evaluator_name.empty() || grid_axes.empty()) {
        std::fprintf(stderr, "error: custom sweeps need --evaluator and --grid\n");
        return usage(argv[0], 2);
      }
      plan.name = "custom";
      plan.base = brightsi::core::power7_system_config();
      plan.evaluator = sw::make_evaluator(evaluator_name);
      plan.add_grid(grid_axes, fixed);
    } else {
      plan = sw::make_registered_plan(command);
    }
    if (!solver_name.empty()) {
      // Stamped as the registered "solver" scenario override (not a base
      // mutation) so the store's content hash sees the choice.
      for (sw::ScenarioSpec& scenario : plan.scenarios) {
        if (!scenario.get("solver")) {
          scenario.set("solver", solver_name == "mg" ? 1.0 : 0.0);
        }
      }
    }
    if (transient_name == "rom") {
      // Stamp the backend onto every scenario (an explicit per-scenario
      // transient= override wins; ScenarioSpec::set replaces in place).
      for (sw::ScenarioSpec& scenario : plan.scenarios) {
        if (!scenario.get("transient")) {
          scenario.set("transient", 1.0);
        }
      }
    }
    plan.validate();

    if (shard.store_dir.empty() && (shard.shard_count != 1 || shard.shard_index != 0)) {
      throw std::invalid_argument("--shard requires --store (shards cooperate through it)");
    }
    if (shard.store_dir.empty() && shard.row_limit >= 0) {
      throw std::invalid_argument("--limit requires --store (it bounds fresh store rows)");
    }

    std::shared_ptr<sw::ExecutionBackend> backend;
    if (!shard.store_dir.empty()) {
      shard.scope = plan.name;
      shard.local = options;
      backend = sw::make_shard_backend(std::move(shard));
    }
    const sw::SweepRunner runner =
        backend != nullptr ? sw::SweepRunner(backend) : sw::SweepRunner(options);
    const sw::SweepResult result = runner.run(plan);

    if (!quiet) {
      print_result_table(result);
      if (result.backend == "shard") {
        std::printf("store: %lld reused, %lld evaluated, %lld pending, %lld leases stolen\n",
                    result.exec.store_hits, result.exec.evaluated, result.exec.pending,
                    result.exec.leases_stolen);
      }
    }
    bool ok = true;
    if (!csv_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               csv_path, "CSV", [&](std::ostream& os) { write_sweep_csv(os, result); }) &&
           ok;
    }
    if (!json_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               json_path, "JSON", [&](std::ostream& os) { write_sweep_json(os, result); }) &&
           ok;
    }
    if (!timing_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               timing_path, "timing",
               [&](std::ostream& os) { write_sweep_timing_csv(os, result); }) &&
           ok;
    }
    return (ok && result.failure_count() == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
