#!/usr/bin/env python3
"""Compare two BENCH_*.json files field by field.

Walks both documents together (nested objects included), prints every
numeric field side by side with the relative change, and exits non-zero
when a throughput-like field regressed by more than the threshold.

Only standard-library modules are used, so the script runs anywhere the
CI's python3 runs.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Regression direction is inferred from the field name: fields matching
*_per_s / *speedup* are better-larger; fields matching *_s / *_ms /
*_s_per_* / *iterations* / *fraction* / *bound_k* are better-smaller;
anything else is informational only (printed, never failing). See
docs/BENCHMARKS.md.
"""

import argparse
import json
import sys

# (suffix/substring, better) rules, first match wins. "larger"/"smaller"
# fields gate the exit status; None = informational.
_DIRECTION_RULES = [
    ("_per_s", "larger"),
    ("speedup", "larger"),
    ("_s_per_step", "smaller"),
    ("_s_per_run", "smaller"),
    ("_ms", "smaller"),
    ("wall_s", "smaller"),
    ("_time_s", "smaller"),
    ("iterations", "smaller"),
]


def direction(field_name):
    for pattern, better in _DIRECTION_RULES:
        if field_name.endswith(pattern) or pattern in field_name:
            return better
    return None


def walk(prefix, value, out):
    """Flattens nested dicts into {dotted.path: number}."""
    if isinstance(value, dict):
        for key, child in value.items():
            walk(f"{prefix}.{key}" if prefix else key, child, out)
    elif isinstance(value, bool):
        pass  # bools are not measurements
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)


def load_fields(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    fields = {}
    walk("", document, fields)
    return fields


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression that fails the comparison (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0.0:
        parser.error("--threshold must be >= 0")

    base = load_fields(args.baseline)
    cand = load_fields(args.candidate)

    regressions = []
    width = max((len(name) for name in base.keys() | cand.keys()), default=0)
    for name in sorted(base.keys() | cand.keys()):
        if name not in base:
            print(f"{name:<{width}}  (only in candidate: {cand[name]:.6g})")
            continue
        if name not in cand:
            print(f"{name:<{width}}  (only in baseline: {base[name]:.6g})")
            continue
        b, c = base[name], cand[name]
        rel = (c - b) / abs(b) if b != 0.0 else (0.0 if c == 0.0 else float("inf"))
        better = direction(name)
        marker = ""
        if better == "larger" and rel < -args.threshold:
            marker = "  REGRESSED"
        elif better == "smaller" and rel > args.threshold:
            marker = "  REGRESSED"
        if marker:
            regressions.append(name)
        print(f"{name:<{width}}  {b:>14.6g} -> {c:>14.6g}  ({rel:+.1%}){marker}")

    if regressions:
        print(
            f"\n{len(regressions)} field(s) regressed past "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("\nno regressions past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
