#!/usr/bin/env python3
"""Check markdown links in the repo's documentation.

Validates, for every markdown file passed on the command line (or README.md
plus docs/*.md when none are):

  * relative file links resolve to an existing file or directory;
  * fragment links (#section, file.md#section) point at a heading that
    exists in the target file, using GitHub's anchor rules (lowercase,
    punctuation stripped, spaces to dashes, -1/-2 suffixes on duplicates);
  * reference-style link definitions are not orphaned.

External links (http/https/mailto) are *not* fetched — CI must not fail on
someone else's outage — but their URL syntax is sanity-checked. Exit code
is the number of broken links, capped at 125.

Stdlib only; no pip installs. Usage:

    python3 tools/check_markdown_links.py [FILE.md ...]
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(?P<text>.+?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str, seen: dict) -> str:
    """GitHub's heading -> anchor id transform (best-effort, ASCII docs)."""
    # Strip inline code/emphasis markers and links, keep their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"[`*_]", "", text)
    anchor = "".join(c for c in text.lower() if c.isalnum() or c in " -")
    anchor = anchor.replace(" ", "-")
    count = seen.get(anchor, 0)
    seen[anchor] = count + 1
    return anchor if count == 0 else f"{anchor}-{count}"


def markdown_lines_outside_fences(path: Path):
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def anchors_of(path: Path) -> set:
    seen: dict = {}
    anchors = set()
    for _, line in markdown_lines_outside_fences(path):
        match = HEADING.match(line)
        if match:
            anchors.add(github_anchor(match.group("text"), seen))
    return anchors


def check_file(path: Path, repo_root: Path, anchor_cache: dict) -> list:
    errors = []
    base = path.parent
    for number, line in markdown_lines_outside_fences(path):
        for match in list(INLINE_LINK.finditer(line)) + list(IMAGE_LINK.finditer(line)):
            target = match.group("target")
            where = f"{path}:{number}"
            if target.startswith(("http://", "https://", "mailto:")):
                if " " in target:
                    errors.append(f"{where}: malformed external URL '{target}'")
                continue
            if target.startswith("#"):
                file_part, fragment = path, target[1:]
            elif "#" in target:
                rel, fragment = target.split("#", 1)
                file_part = (base / rel).resolve()
            else:
                file_part, fragment = (base / target).resolve(), None
            if not Path(file_part).resolve().is_relative_to(repo_root):
                # GitHub-web-relative URL (e.g. the ../../actions CI badge):
                # it escapes the checkout, so there is nothing to stat.
                continue
            if not Path(file_part).exists():
                errors.append(f"{where}: broken link '{target}' (no such file)")
                continue
            if fragment is not None:
                file_part = Path(file_part)
                if file_part.suffix.lower() not in (".md", ".markdown"):
                    continue  # cannot anchor-check non-markdown targets
                if file_part not in anchor_cache:
                    anchor_cache[file_part] = anchors_of(file_part)
                if fragment not in anchor_cache[file_part]:
                    errors.append(
                        f"{where}: broken anchor '{target}' "
                        f"(no heading '#{fragment}' in {file_part.name})")
    return errors


def main(argv) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [repo_root / "README.md"] + sorted((repo_root / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    for f in missing:
        print(f"error: no such file {f}", file=sys.stderr)
    anchor_cache: dict = {}
    errors = []
    for f in files:
        if f.exists():
            errors.extend(check_file(f.resolve(), repo_root, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    broken = len(errors) + len(missing)
    if broken == 0:
        print(f"ok: {len(files)} files, all links resolve")
    return min(broken, 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
