// brightsi_merge — assemble a sharded sweep's result store back into the
// canonical row order of its plan.
//
//   brightsi_merge <plan> --store DIR [options]
//
// Re-expands the registered plan deterministically, resolves every
// scenario against the content-addressed store that cooperating
// `brightsi_sweep --shard i/N --store DIR` instances filled, and emits the
// rows through the standard sweep writers — the merged CSV/JSON is
// byte-identical to an uninterrupted single-process `brightsi_sweep` run,
// for any shard count, thread count, or kill-and-resume history.
//
// Options:
//   --store DIR       the shared result store (required)
//   --csv FILE        write result rows (FILE may be '-' for stdout)
//   --json FILE       write result records as JSON
//   --quiet           suppress the summary line on stdout
//   --allow-missing   emit pending rows for scenarios not in the store
//                     (default: a missing row is an error)
//   --solver ilu0|mg, --transient full|rom
//                     must match the flags the sweep ran with (they stamp
//                     scenario overrides, which the content hash covers)
#include <cstdio>
#include <iostream>
#include <string>

#include "core/report.h"
#include "sweep/execution.h"
#include "sweep/registry.h"
#include "sweep/runner.h"
#include "cli_args.h"

namespace sw = brightsi::sweep;

namespace {

int usage(const char* argv0, int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: %s <plan> --store DIR [--csv FILE] [--json FILE] [--quiet]\n"
               "           [--allow-missing] [--solver ilu0|mg] [--transient full|rom]\n",
               argv0);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0], 2);
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return usage(argv[0], 0);
  }

  try {
    std::string store_dir;
    std::string csv_path;
    std::string json_path;
    std::string solver_name;
    std::string transient_name;
    bool quiet = false;
    bool allow_missing = false;

    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&] { return brightsi::tools::next_arg(argc, argv, i, arg); };
      if (arg == "--store") {
        store_dir = next();
      } else if (arg == "--csv") {
        csv_path = next();
      } else if (arg == "--json") {
        json_path = next();
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--allow-missing") {
        allow_missing = true;
      } else if (arg == "--solver") {
        solver_name = brightsi::tools::next_choice_arg(argc, argv, i, arg, {"ilu0", "mg"});
      } else if (arg == "--transient") {
        transient_name =
            brightsi::tools::next_choice_arg(argc, argv, i, arg, {"full", "rom"});
      } else {
        std::fprintf(stderr, "error: %s\n",
                     brightsi::tools::unknown_option_message(arg).c_str());
        return usage(argv[0], 2);
      }
    }
    if (store_dir.empty()) {
      std::fprintf(stderr, "error: brightsi_merge needs --store DIR\n");
      return usage(argv[0], 2);
    }

    sw::SweepPlan plan = sw::make_registered_plan(command);
    // Mirror brightsi_sweep's flag-to-override stamping exactly, so the
    // expanded scenarios hash to the same store keys.
    if (!solver_name.empty()) {
      for (sw::ScenarioSpec& scenario : plan.scenarios) {
        if (!scenario.get("solver")) {
          scenario.set("solver", solver_name == "mg" ? 1.0 : 0.0);
        }
      }
    }
    if (transient_name == "rom") {
      for (sw::ScenarioSpec& scenario : plan.scenarios) {
        if (!scenario.get("transient")) {
          scenario.set("transient", 1.0);
        }
      }
    }
    plan.validate();

    const sw::SweepResult result = sw::assemble_from_store(plan, store_dir, allow_missing);
    if (!quiet) {
      std::printf("%s: %zu rows merged from %s (%lld stored, %lld pending)\n",
                  plan.name.c_str(), result.rows.size(), store_dir.c_str(),
                  result.exec.store_hits, result.exec.pending);
    }

    bool ok = true;
    if (!csv_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               csv_path, "CSV", [&](std::ostream& os) { write_sweep_csv(os, result); }) &&
           ok;
    }
    if (!json_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               json_path, "JSON", [&](std::ostream& os) { write_sweep_json(os, result); }) &&
           ok;
    }
    return (ok && result.failure_count() == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
