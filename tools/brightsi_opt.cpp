// brightsi_opt — design-space optimization of the integrated microfluidic
// power/cooling system, on every core, seed-free deterministic (output is
// byte-identical for any --threads value).
//
//   brightsi_opt --list                      registered studies
//   brightsi_opt <study> [options]           run a registered study
//
// Options:
//   --algo A          grid (default; axis refinement + Nelder-Mead) or
//                     nsga2 (multi-objective evolutionary search with an
//                     RBF surrogate pre-screen; needs a Pareto pair)
//   --budget N        max evaluator invocations (default 64)
//   --threads N       batch workers (default: hardware concurrency)
//   --axis-points K   samples per axis per refinement pass (default 3)
//   --no-polish       skip the Nelder-Mead polish of continuous params
//   --population N    nsga2 individuals per generation (default 16)
//   --screen-factor K nsga2 offspring proposed per real evaluation slot
//                     (default 3; 1 disables the surrogate screen)
//   --no-surrogate    nsga2: evaluate every proposal, never screen
//   --seed S          nsga2 RNG seed (fixed default; determinism contract)
//   --no-reuse        rebuild thermal structures per candidate
//   --maximize M[*W]  replace the study's objective *terms*: maximize M
//   --minimize M[*W]  ... or minimize it (repeatable; weights optional).
//                     The study's built-in hard constraints and Pareto
//                     pair are kept — use --cap/--floor to add to them.
//   --cap M=V         add hard constraint metric M <= V
//   --floor M=V       add hard constraint metric M >= V
//   --csv FILE        archive rows + score/feasible/pareto ('-' = stdout)
//   --pareto FILE     Pareto-front rows (sweep row format)
//   --json FILE       study metadata + best + front + archive as JSON
//   --quiet           suppress the result tables on stdout
//   --solver S        thermal preconditioner: ilu0 (default) or mg
//   --transient B     thermal stepping backend for mission studies:
//                     full (default) or rom (certified reduced-order)
//   --store DIR       content-addressed result store (sweep/execution.h):
//                     candidates evaluated by a previous run of the same
//                     study are reused, fresh ones appended — a re-run
//                     with a widened budget resumes instead of restarting
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "opt/nsga2.h"
#include "opt/studies.h"
#include "sweep/execution.h"
#include "cli_args.h"

namespace op = brightsi::opt;
namespace sw = brightsi::sweep;
using brightsi::core::TextTable;

namespace {

int usage(const char* argv0, int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: %s --list\n"
               "       %s <study> [--algo grid|nsga2] [--budget N] [--threads N]\n"
               "           [--axis-points K] [--no-polish] [--population N]\n"
               "           [--screen-factor K] [--no-surrogate] [--seed S] [--no-reuse]\n"
               "           [--maximize M[*W]] [--minimize M[*W]] [--cap M=V] [--floor M=V]\n"
               "           [--csv FILE] [--pareto FILE] [--json FILE] [--quiet]\n"
               "           [--solver ilu0|mg] [--transient full|rom] [--store DIR]\n",
               argv0, argv0);
  return exit_code;
}

void list_studies() {
  TextTable table({"study", "summary"});
  for (const op::StudyDescription& study : op::registered_studies()) {
    table.add_row({study.name, study.summary});
  }
  table.print(std::cout);
}

void print_design_row(const op::OptResult& result, int index, TextTable& table) {
  const sw::ScenarioResult& row = result.archive.rows[static_cast<std::size_t>(index)];
  std::vector<std::string> cells = {row.name};
  for (const double metric : row.metrics) {
    cells.push_back(TextTable::num(metric, 4));
  }
  cells.push_back(TextTable::num(result.scores[static_cast<std::size_t>(index)], 4));
  table.add_row(std::move(cells));
}

void print_result(const op::OptResult& result) {
  std::printf("study %s: %s\n", result.study_name.c_str(),
              result.objective_description.c_str());
  if (result.algo == "nsga2") {
    std::printf("%lld evaluations (%d generations; %lld proposed, %lld screened out) "
                "on %d threads",
                result.evaluations(), result.generations, result.surrogate_candidates,
                result.surrogate_screened, result.archive.thread_count);
  } else {
    std::printf("%lld evaluations (%d refinement passes, %d polish steps) on %d threads",
                result.evaluations(), result.passes, result.polish_steps,
                result.archive.thread_count);
  }
  if (result.model_builds > 0) {
    // Only meaningful for evaluators that go through the thermal-model
    // structure cache; the rail evaluator, for example, never does.
    std::printf("; %d thermal builds, %lld cache hits", result.model_builds,
                result.evaluations() - result.model_builds);
  }
  std::printf("\n");

  std::vector<std::string> headers = {"design"};
  headers.insert(headers.end(), result.archive.metric_names.begin(),
                 result.archive.metric_names.end());
  headers.push_back("score");
  if (result.best_index >= 0) {
    std::printf("\nbest design (archive row %d):\n", result.best_index);
    TextTable best(headers);
    print_design_row(result, result.best_index, best);
    best.print(std::cout);
  } else {
    std::printf("\nno feasible design found within the budget\n");
  }
  if (!result.pareto_indices.empty()) {
    std::printf("\nPareto front (%zu designs):\n", result.pareto_indices.size());
    TextTable front(headers);
    for (const int index : result.pareto_indices) {
      print_design_row(result, index, front);
    }
    front.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0], 2);
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return usage(argv[0], 0);
  }
  if (command == "--list") {
    list_studies();
    return 0;
  }

  try {
    op::OptimizerOptions options;
    op::Nsga2Options evo;
    std::string algo = "grid";
    std::string csv_path;
    std::string pareto_path;
    std::string json_path;
    bool quiet = false;
    std::string solver_name;
    std::string transient_name;
    std::string store_dir;
    std::vector<op::ObjectiveTerm> term_overrides;
    std::vector<op::MetricConstraint> extra_constraints;

    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&] { return brightsi::tools::next_arg(argc, argv, i, arg); };
      auto next_int = [&](int minimum) {
        return brightsi::tools::next_int_arg(argc, argv, i, arg, minimum);
      };
      if (arg == "--algo") {
        algo = brightsi::tools::next_choice_arg(argc, argv, i, arg, {"grid", "nsga2"});
      } else if (arg == "--budget") {
        options.budget = next_int(1);
      } else if (arg == "--population") {
        evo.population = next_int(4);
      } else if (arg == "--screen-factor") {
        evo.screen_factor = next_int(1);
      } else if (arg == "--no-surrogate") {
        evo.surrogate = false;
      } else if (arg == "--seed") {
        evo.seed = std::stoull(next());
      } else if (arg == "--threads") {
        // 0 keeps the "hardware concurrency" default, as in brightsi_sweep.
        options.thread_count = next_int(0);
      } else if (arg == "--axis-points") {
        options.axis_points = next_int(2);
      } else if (arg == "--no-polish") {
        options.nelder_mead = false;
      } else if (arg == "--no-reuse") {
        options.reuse_structures = false;
      } else if (arg == "--maximize") {
        term_overrides.push_back(op::parse_objective_term(next(), 1.0));
      } else if (arg == "--minimize") {
        term_overrides.push_back(op::parse_objective_term(next(), -1.0));
      } else if (arg == "--cap") {
        extra_constraints.push_back(op::parse_metric_bound(next(), /*upper=*/true));
      } else if (arg == "--floor") {
        extra_constraints.push_back(op::parse_metric_bound(next(), /*upper=*/false));
      } else if (arg == "--csv") {
        csv_path = next();
      } else if (arg == "--pareto") {
        pareto_path = next();
      } else if (arg == "--json") {
        json_path = next();
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--solver") {
        solver_name = brightsi::tools::next_choice_arg(argc, argv, i, arg, {"ilu0", "mg"});
      } else if (arg == "--transient") {
        transient_name =
            brightsi::tools::next_choice_arg(argc, argv, i, arg, {"full", "rom"});
      } else if (arg == "--store") {
        store_dir = next();
      } else {
        std::fprintf(stderr, "error: %s\n",
                     brightsi::tools::unknown_option_message(arg).c_str());
        return usage(argv[0], 2);
      }
    }

    op::Study study = op::make_registered_study(command);
    if (!solver_name.empty()) {
      // A fixed override of the registered "solver" parameter (not a base
      // mutation) so the store's content hash sees the choice.
      study.fixed.emplace_back("solver", solver_name == "mg" ? 1.0 : 0.0);
    }
    if (transient_name == "rom") {
      // Candidate names derive from searched parameters only, so the fixed
      // backend override keeps archive rows comparable against a full run.
      study.fixed.emplace_back("transient", 1.0);
    }
    if (!term_overrides.empty()) {
      study.objective.terms = term_overrides;
    }
    study.objective.constraints.insert(study.objective.constraints.end(),
                                       extra_constraints.begin(), extra_constraints.end());

    if (!store_dir.empty()) {
      sw::ShardOptions shard;
      shard.store_dir = store_dir;
      shard.scope = study.name;
      shard.local = {options.thread_count, options.reuse_structures};
      options.backend = sw::make_shard_backend(std::move(shard));
    }
    op::OptResult result;
    if (algo == "nsga2") {
      evo.budget = options.budget;
      evo.thread_count = options.thread_count;
      evo.reuse_structures = options.reuse_structures;
      evo.backend = options.backend;
      result = op::optimize_nsga2(study, evo);
    } else {
      result = op::optimize(study, options);
    }

    if (!quiet) {
      print_result(result);
      if (!store_dir.empty()) {
        std::printf("store: %lld reused, %lld evaluated\n", result.archive.exec.store_hits,
                    result.archive.exec.evaluated);
      }
    }
    bool ok = true;
    if (!csv_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               csv_path, "CSV", [&](std::ostream& os) { op::write_opt_csv(os, result); }) &&
           ok;
    }
    if (!pareto_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               pareto_path, "Pareto CSV",
               [&](std::ostream& os) { op::write_pareto_csv(os, result); }) &&
           ok;
    }
    if (!json_path.empty()) {
      ok = brightsi::core::emit_to_sink(
               json_path, "JSON",
               [&](std::ostream& os) { op::write_opt_json(os, result); }) &&
           ok;
    }
    return (ok && result.best_index >= 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
