// Tiny argv helpers shared by the tools/ CLI drivers, so the
// missing-value and integer-parsing error messages stay identical across
// brightsi_sweep and brightsi_opt.
#ifndef BRIGHTSI_TOOLS_CLI_ARGS_H
#define BRIGHTSI_TOOLS_CLI_ARGS_H

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>

namespace brightsi::tools {

/// argv[++i], or throws "missing value after <flag>".
inline std::string next_arg(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    throw std::invalid_argument("missing value after " + flag);
  }
  return argv[++i];
}

/// next_arg parsed as an integer >= `minimum`; throws with a readable
/// message on garbage or an out-of-range value.
inline int next_int_arg(int argc, char** argv, int& i, const std::string& flag,
                        int minimum) {
  const std::string text = next_arg(argc, argv, i, flag);
  int value = 0;
  try {
    std::size_t consumed = 0;
    value = std::stoi(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument(text);
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("not an integer after " + flag + ": '" + text + "'");
  }
  if (value < minimum) {
    throw std::invalid_argument(flag + " must be >= " + std::to_string(minimum));
  }
  return value;
}

/// next_arg constrained to an enumerated vocabulary (--solver ilu0|mg,
/// --transient full|rom). Throws with the full list of valid choices, so a
/// typo tells the user the vocabulary instead of just rejecting; both CLIs
/// share the one message (pinned by tests/tools_test.cpp and the
/// PASS_REGULAR_EXPRESSION ctest cases).
inline std::string next_choice_arg(int argc, char** argv, int& i, const std::string& flag,
                                   std::initializer_list<const char*> choices) {
  const std::string value = next_arg(argc, argv, i, flag);
  std::string listed;
  for (const char* choice : choices) {
    if (value == choice) {
      return value;
    }
    listed += listed.empty() ? choice : std::string(", ") + choice;
  }
  throw std::invalid_argument("invalid value '" + value + "' after " + flag +
                              " (expected one of: " + listed + ")");
}

/// Parses a "--shard I/N" spec into (shard index, shard count). Both halves
/// must parse completely — "1abc/3def" is rejected, not silently run as
/// shard 1/3 — and negative values are rejected here rather than left to
/// surface as a confusing store error later. One pinned message for every
/// malformed form (ctest's brightsi_sweep_bad_shard_spec family).
inline std::pair<int, int> parse_shard_spec(const std::string& flag,
                                            const std::string& spec) {
  const auto malformed = [&] {
    return std::invalid_argument(flag + " expects I/N (e.g. 0/3), got: " + spec);
  };
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw malformed();
  }
  int index = 0;
  int count = 0;
  try {
    std::size_t consumed = 0;
    index = std::stoi(spec.substr(0, slash), &consumed);
    if (consumed != slash) {
      throw std::invalid_argument(spec);
    }
    const std::string count_text = spec.substr(slash + 1);
    count = std::stoi(count_text, &consumed);
    if (consumed != count_text.size()) {
      throw std::invalid_argument(spec);
    }
  } catch (const std::exception&) {
    throw malformed();
  }
  if (index < 0 || count < 0) {
    throw malformed();
  }
  return {index, count};
}

/// The exact unknown-flag diagnostic both CLIs print (prefixed "error: ");
/// CI pins it with PASS_REGULAR_EXPRESSION, and tests/tools_test.cpp pins
/// the text itself, so the two drivers can never drift apart.
inline std::string unknown_option_message(const std::string& flag) {
  return "unknown option " + flag;
}

}  // namespace brightsi::tools

#endif  // BRIGHTSI_TOOLS_CLI_ARGS_H
